"""Orchestrating one exploration through the campaign engine.

``run_explore`` is the front door: trace the victim, prune the fault
space, fan the survivors out as frozen job shards through an
:class:`~repro.engine.session.EngineSession` (serial, parallel or
supervised — the explorer does not care), and fold the payloads into the
canonical exploitability map.  Sharding (``rows_per_job``) is a pure
scheduling knob: per-point seed streams and pure-arithmetic replays make
the map byte-identical whatever the chunking or executor.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Tuple

from repro.engine.jobs import ExploreInjectionJob, ExplorePointJob
from repro.errors import ConfigurationError
from repro.explore.emap import build_map
from repro.explore.plan import ExplorePlan, enumerate_injections, prune_points
from repro.explore.victim import trace_victim

logger = logging.getLogger(__name__)


def point_jobs(
    plan: ExplorePlan,
    candidates: Tuple[Tuple[float, int], ...],
    instructions: Tuple[str, ...],
    *,
    rows_per_job: int,
) -> List[ExplorePointJob]:
    """Shard the surviving operating points into probe jobs."""
    return [
        ExplorePointJob(
            codename=plan.codename,
            points=tuple(candidates[start : start + rows_per_job]),
            protect=plan.protect,
            seed=plan.seed,
            unsafe_json=plan.unsafe_json,
            instructions=instructions,
        )
        for start in range(0, len(candidates), rows_per_job)
    ]


def injection_jobs(
    plan: ExplorePlan,
    reps: Tuple[Tuple[int, str], ...],
    *,
    rows_per_job: int,
) -> List[ExploreInjectionJob]:
    """Shard the injection-class representatives into replay jobs."""
    return [
        ExploreInjectionJob(
            key_bits=plan.key_bits,
            key_seed=plan.key_seed,
            message=plan.message,
            reps=tuple(reps[start : start + rows_per_job]),
            seed=plan.seed,
        )
        for start in range(0, len(reps), rows_per_job)
    ]


def run_explore(
    plan: ExplorePlan, *, session=None, rows_per_job: int = 8
) -> Dict:
    """Execute one explore plan end to end; returns the map document."""
    if rows_per_job <= 0:
        raise ConfigurationError("rows_per_job must be positive")
    if session is None:
        from repro.engine.session import get_session

        session = get_session()

    from repro.attacks.rsa_crt import RSAKey

    key = RSAKey.generate(plan.key_bits, seed=plan.key_seed)
    trace = trace_victim(key, plan.message)
    instructions = tuple(sorted({op.instruction for op in trace.ops}))

    injection_plan = enumerate_injections(trace, plan.fault_models)
    point_plan = prune_points(plan, instructions)
    logger.info(
        "explore %s%s: %d ops x %d models = %d injections "
        "(%d masked, %d equivalent, %d simulated); %d points "
        "(%d pruned safe, %d probed)",
        plan.codename,
        " [protected]" if plan.protect else "",
        trace.op_count,
        len(plan.fault_models),
        injection_plan.enumerated,
        injection_plan.pruned_masked,
        injection_plan.pruned_equivalent,
        injection_plan.simulated,
        len(point_plan.points),
        point_plan.pruned_safe,
        len(point_plan.candidates),
    )

    reps = tuple(
        (cls.op_index, cls.members[0]) for cls in injection_plan.classes
    )
    jobs = point_jobs(
        plan, point_plan.candidates, instructions, rows_per_job=rows_per_job
    ) + injection_jobs(plan, reps, rows_per_job=rows_per_job)
    split = len(point_plan.candidates) // rows_per_job + (
        1 if len(point_plan.candidates) % rows_per_job else 0
    )
    payloads = session.run_jobs(jobs)
    from repro.engine.resilience import Quarantined
    from repro.errors import ReproError

    lost = sum(1 for payload in payloads if isinstance(payload, Quarantined))
    if lost:
        # An exploitability map folded from partial shards would silently
        # understate the exploitable set; exhaustiveness demands every shard.
        raise ReproError(
            f"explore plan lost {lost} job shard(s) to quarantine; "
            "see the run report's quarantine list"
        )

    point_records: List[Dict] = []
    for payload in payloads[:split]:
        point_records.extend(payload)
    injection_verdicts: List[Dict] = []
    for payload in payloads[split:]:
        injection_verdicts.extend(payload)

    return build_map(
        plan,
        trace,
        point_plan,
        point_records,
        injection_plan,
        injection_verdicts,
    )
