"""Deterministic adversarial-schedule fuzzing under the invariant checker.

A *schedule* is a flat list of attacker/benign actions — undervolt ramps,
raw OCM write storms (including malformed commands), P-state churn,
module load/unload races, polling-period retunes, instruction windows and
plain time advances — replayed against a freshly built
:class:`~repro.testbench.Machine` with an
:class:`~repro.verify.invariants.InvariantChecker` installed on every
hook.  Domain errors the substrate is *specified* to raise
(``OCMProtocolError`` for a malformed mailbox command, a machine check at
a crash-boundary operating point, …) are expected and recorded; an
:class:`~repro.errors.InvariantViolation` is the fuzzer's finding.

Everything is deterministic: schedules are generated from the PR-2 named
seed streams, machines are seeded from the same streams, and schedules
serialize to canonical JSON so a violating case replays bit-for-bit from
its artifact (see :mod:`repro.verify.shrink` for minimization).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cpu import ocm
from repro.cpu.models import model_by_codename
from repro.cpu.msr import IA32_PERF_STATUS, MSR_OC_MAILBOX
from repro.errors import (
    ConfigurationError,
    CoreIndexError,
    FrequencyError,
    InvalidPlaneError,
    InvalidVoltageOffsetError,
    InvariantViolation,
    KernelModuleError,
    MachineCheckError,
    MSRError,
)
from repro.telemetry import Telemetry
from repro.verify.invariants import InvariantChecker

#: Schema tag embedded in repro artifacts so stale ones fail loudly.
SCHEDULE_SCHEMA_VERSION = 1

#: Domain errors a schedule is allowed to provoke (the substrate's
#: specified rejections); anything else propagates out of the run.
EXPECTED_ERRORS = (
    ConfigurationError,
    CoreIndexError,
    FrequencyError,
    InvalidPlaneError,
    InvalidVoltageOffsetError,
    KernelModuleError,
    MSRError,
)

#: Action kinds and their relative generation weights.
ACTION_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("advance", 22.0),
    ("undervolt", 18.0),
    ("window", 12.0),
    ("pstate", 10.0),
    ("ocm_raw", 10.0),
    ("ocm_read", 6.0),
    ("read_status", 4.0),
    ("module_load", 7.0),
    ("module_unload", 5.0),
    ("set_period", 4.0),
    ("reboot", 2.0),
)


@dataclass(frozen=True)
class FuzzAction:
    """One step of an adversarial schedule (JSON-round-trippable)."""

    kind: str
    core: int = 0
    offset_mv: int = 0
    value: int = 0
    frequency_ghz: float = 0.0
    period_us: int = 0
    dt_us: int = 0
    ops: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (every field, sorted on serialization)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzAction":
        return cls(**data)


@dataclass(frozen=True)
class FuzzSchedule:
    """A complete replayable fuzz case: machine recipe plus action list."""

    codename: str
    machine_seed: int
    actions: Tuple[FuzzAction, ...]
    #: Canonical ``UnsafeStateSet.to_dict()`` JSON; ``None`` turns the
    #: module actions into recorded no-ops (the machine still fuzzes).
    unsafe_json: Optional[str] = None
    #: Provenance of generated schedules ({"seed": ..., "case_index": ...}).
    source: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEDULE_SCHEMA_VERSION,
            "codename": self.codename,
            "machine_seed": self.machine_seed,
            "unsafe_json": self.unsafe_json,
            "source": self.source,
            "actions": [action.to_dict() for action in self.actions],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the replayable artifact body."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzSchedule":
        schema = data.get("schema")
        if schema != SCHEDULE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"fuzz schedule schema {schema!r} != {SCHEDULE_SCHEMA_VERSION}"
            )
        return cls(
            codename=data["codename"],
            machine_seed=int(data["machine_seed"]),
            actions=tuple(FuzzAction.from_dict(a) for a in data["actions"]),
            unsafe_json=data.get("unsafe_json"),
            source=data.get("source"),
        )

    @classmethod
    def from_json(cls, blob: str) -> "FuzzSchedule":
        return cls.from_dict(json.loads(blob))


def generate_schedule(stream, codename: str, num_actions: int) -> Tuple[FuzzAction, ...]:
    """Draw ``num_actions`` actions from a named seed stream.

    Same stream, same codename, same count → the identical schedule, on
    every platform: all randomness flows through the stream's generator
    and every parameter is reduced to an int (or a table frequency).
    """
    model = model_by_codename(codename)
    rng = stream.rng()
    kinds = [kind for kind, _ in ACTION_WEIGHTS]
    total = sum(weight for _, weight in ACTION_WEIGHTS)
    probabilities = [weight / total for _, weight in ACTION_WEIGHTS]
    frequencies = list(model.frequency_table.frequencies_ghz())
    actions: List[FuzzAction] = []
    for _ in range(num_actions):
        kind = kinds[int(rng.choice(len(kinds), p=probabilities))]
        core = int(rng.integers(0, model.core_count))
        if kind == "advance":
            actions.append(FuzzAction(kind, dt_us=int(rng.integers(50, 2001))))
        elif kind == "undervolt":
            actions.append(
                FuzzAction(kind, core=core, offset_mv=-int(rng.integers(0, 281)))
            )
        elif kind == "window":
            actions.append(
                FuzzAction(kind, core=core, ops=int(rng.integers(1_000, 50_001)))
            )
        elif kind == "pstate":
            frequency = frequencies[int(rng.integers(0, len(frequencies)))]
            actions.append(FuzzAction(kind, core=core, frequency_ghz=frequency))
        elif kind == "ocm_raw":
            actions.append(FuzzAction(kind, core=core, value=_raw_ocm_value(rng)))
        elif kind == "ocm_read":
            plane = int(rng.integers(0, 5))
            actions.append(
                FuzzAction(kind, core=core, value=ocm.encode_read_request(plane))
            )
        elif kind == "read_status":
            actions.append(FuzzAction(kind, core=core))
        elif kind == "set_period":
            actions.append(FuzzAction(kind, period_us=int(rng.integers(100, 2001))))
        else:  # module_load / module_unload / reboot
            actions.append(FuzzAction(kind))
    return tuple(actions)


def _raw_ocm_value(rng) -> int:
    """A raw 0x150 write: valid, malformed, or protocol-violating."""
    flavor = int(rng.integers(0, 5))
    plane = int(rng.integers(0, 5))
    if flavor == 0:  # well-formed write, full encodable unit range
        units = int(rng.integers(ocm.MIN_OFFSET_UNITS, ocm.MAX_OFFSET_UNITS + 1))
        return ocm.WRITE_COMMAND_BASE | ocm.encode_offset_field(units) | (
            plane << ocm.PLANE_SHIFT
        )
    if flavor == 1:  # well-formed read request
        return ocm.encode_read_request(plane)
    if flavor == 2:  # arbitrary command byte (mostly unknown commands)
        byte = int(rng.integers(0, 256))
        return ocm.BUSY_BIT | (byte << ocm.COMMAND_SHIFT) | (plane << ocm.PLANE_SHIFT)
    if flavor == 3:  # busy bit clear: the mailbox must reject it
        return int(rng.integers(0, 1 << 62))
    # flavor == 4: reserved plane select (5-7)
    bad_plane = int(rng.integers(5, 8))
    return ocm.WRITE_COMMAND_BASE | (bad_plane << ocm.PLANE_SHIFT)


def schedule_for_job(job) -> FuzzSchedule:
    """The deterministic schedule a :class:`repro.engine.jobs.FuzzJob` runs."""
    stream = job.stream()
    machine_seed = stream.child("machine").integer()
    actions = generate_schedule(
        stream.child("actions"), job.codename, job.num_actions
    )
    return FuzzSchedule(
        codename=job.codename,
        machine_seed=machine_seed,
        actions=actions,
        unsafe_json=job.unsafe_json,
        source={"seed": int(job.seed), "case_index": int(job.case_index)},
    )


def run_schedule(
    schedule: FuzzSchedule, *, telemetry: Optional[Telemetry] = None
) -> Dict[str, Any]:
    """Replay a schedule under the invariant checker.

    Returns a JSON-safe summary; ``summary["violation"]`` is ``None`` for
    a clean run or the violation's description (with the index of the
    offending action) when an invariant tripped.  Expected domain errors
    are tallied, and a machine check triggers the same reboot-and-continue
    recovery the characterization harness uses.

    A :class:`repro.observe.FlightRecorder` rides along carrying the
    schedule itself, so a tripped invariant leaves a self-contained
    post-mortem (``summary["flight_dump"]`` when ``REPRO_FLIGHT_DIR``
    selects a directory) that ``repro fuzz --replay`` accepts directly.
    """
    from repro.core.unsafe_states import UnsafeStateSet
    from repro.observe import FlightRecorder, flight_dir_from_env
    from repro.testbench import Machine

    model = model_by_codename(schedule.codename)
    telemetry = telemetry or Telemetry()
    machine = Machine.build(
        model, seed=schedule.machine_seed, telemetry=telemetry, verify=False
    )
    recorder = FlightRecorder(machine, dump_dir=flight_dir_from_env())
    recorder.context["schedule"] = schedule.to_dict()
    checker = InvariantChecker().install(machine)
    unsafe = (
        UnsafeStateSet.from_dict(json.loads(schedule.unsafe_json))
        if schedule.unsafe_json
        else None
    )
    expected: List[Dict[str, Any]] = []
    skipped: List[int] = []
    violation: Optional[Dict[str, Any]] = None
    applied = 0
    for index, action in enumerate(schedule.actions):
        try:
            if _apply_action(machine, action, unsafe):
                applied += 1
            else:
                skipped.append(index)
        except MachineCheckError:
            expected.append({"index": index, "error": "MachineCheckError"})
            machine.reboot()
        except InvariantViolation as error:
            violation = dict(error.to_dict(), action_index=index)
            break
        except EXPECTED_ERRORS as error:
            expected.append({"index": index, "error": type(error).__name__})
    if violation is None:
        try:
            checker.check_machine()
        except InvariantViolation as error:
            violation = dict(error.to_dict(), action_index=len(schedule.actions))
    return {
        "codename": schedule.codename,
        "machine_seed": schedule.machine_seed,
        "source": schedule.source,
        "actions": len(schedule.actions),
        "applied": applied,
        "skipped": skipped,
        "expected_errors": expected,
        "crashes": machine.crash_count,
        "checks": checker.checks,
        "sim_time_s": machine.now,
        "violation": violation,
        "flight_dump": (
            str(recorder.dump_paths[-1]) if recorder.dump_paths else None
        ),
    }


def _apply_action(machine, action: FuzzAction, unsafe) -> bool:
    """Apply one action; returns False when it was a recorded no-op."""
    kind = action.kind
    if kind == "advance":
        machine.advance(action.dt_us * 1e-6)
    elif kind == "undervolt":
        machine.write_voltage_offset(action.offset_mv, action.core)
    elif kind == "window":
        machine.run_imul_window(action.core, iterations=action.ops)
    elif kind == "pstate":
        machine.set_frequency(action.frequency_ghz, core_index=action.core)
    elif kind in ("ocm_raw", "ocm_read"):
        machine.msr_driver.write(action.core, MSR_OC_MAILBOX, action.value)
        if kind == "ocm_read":
            machine.msr_driver.read(action.core, MSR_OC_MAILBOX)
    elif kind == "read_status":
        machine.msr_driver.read(action.core, IA32_PERF_STATUS)
    elif kind == "module_load":
        if unsafe is None:
            return False
        from repro.core.polling_module import PollingCountermeasure

        # A fresh instance per load exercises the reload/lifetime path
        # (the satellite-2 regression surface).
        machine.modules.insmod(PollingCountermeasure(machine, unsafe))
    elif kind == "module_unload":
        from repro.core.polling_module import PollingCountermeasure

        machine.modules.rmmod(PollingCountermeasure.name)
    elif kind == "set_period":
        from repro.core.polling_module import PollingCountermeasure

        if not machine.modules.is_loaded(PollingCountermeasure.name):
            return False
        module = machine.modules.get(PollingCountermeasure.name)
        module.set_period(action.period_us * 1e-6)
    elif kind == "reboot":
        machine.reboot()
    else:
        raise ConfigurationError(f"unknown fuzz action kind {kind!r}")
    return True
