"""Runtime verification: invariant checking and adversarial fuzzing.

Two halves, built for each other:

* :class:`InvariantChecker` — installs on a built
  :class:`~repro.testbench.Machine` and asserts, while the simulation
  runs, the invariants the reproduction's claims rest on (event-time
  monotonicity, heap hygiene, OCM encode/decode round trips, busy-bit
  protocol ordering, regulator settle causality, safe-state consistency
  of the fault injector, engine counter conservation).
* the schedule fuzzer (:func:`generate_schedule` / :func:`run_schedule` /
  :func:`shrink_schedule`) — drives deterministic adversarial schedules
  under the checker and minimizes any violation to a replayable JSON
  artifact.  ``repro fuzz`` and :class:`repro.engine.jobs.FuzzJob` are
  the entry points.

Set ``REPRO_VERIFY=1`` to have every :meth:`Machine.build` install a
checker automatically (result-affecting: folded into engine job
fingerprints).
"""

from repro.verify.fuzz import (
    ACTION_WEIGHTS,
    EXPECTED_ERRORS,
    FuzzAction,
    FuzzSchedule,
    SCHEDULE_SCHEMA_VERSION,
    generate_schedule,
    run_schedule,
    schedule_for_job,
)
from repro.verify.invariants import (
    InvariantChecker,
    VERIFY_ENV,
    verify_enabled_from_env,
)
from repro.verify.shrink import schedule_violates, shrink_schedule

__all__ = [
    "ACTION_WEIGHTS",
    "EXPECTED_ERRORS",
    "FuzzAction",
    "FuzzSchedule",
    "InvariantChecker",
    "SCHEDULE_SCHEMA_VERSION",
    "VERIFY_ENV",
    "generate_schedule",
    "run_schedule",
    "schedule_for_job",
    "schedule_violates",
    "shrink_schedule",
    "verify_enabled_from_env",
]
