"""Delta-debugging minimization of violating fuzz schedules.

Classic ddmin (Zeller & Hildebrandt) over the action list: repeatedly
try dropping chunks of the schedule, keeping any candidate that still
trips an invariant, until no single action can be removed.  Replays are
fully deterministic (same machine seed, same actions), so the shrink is
too — the same violating schedule always minimizes to the same artifact.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.errors import ReproError
from repro.verify.fuzz import FuzzAction, FuzzSchedule, run_schedule


def schedule_violates(schedule: FuzzSchedule) -> bool:
    """Whether replaying the schedule trips any invariant."""
    return run_schedule(schedule)["violation"] is not None


def shrink_schedule(
    schedule: FuzzSchedule,
    *,
    is_failing: Optional[Callable[[FuzzSchedule], bool]] = None,
    max_replays: int = 2000,
) -> FuzzSchedule:
    """Minimize a violating schedule to a 1-minimal action list.

    ``is_failing`` defaults to :func:`schedule_violates`; ``max_replays``
    bounds the number of candidate replays (the current best schedule is
    returned if the budget runs out).

    Raises
    ------
    ReproError
        If the input schedule does not fail to begin with — shrinking a
        passing schedule would silently "minimize" to garbage.
    """
    test = is_failing or schedule_violates

    def candidate(actions: List[FuzzAction]) -> FuzzSchedule:
        return dataclasses.replace(schedule, actions=tuple(actions))

    if not test(schedule):
        raise ReproError("refusing to shrink: schedule does not violate any invariant")

    actions = list(schedule.actions)
    replays = 0
    granularity = 2
    while len(actions) >= 2 and replays < max_replays:
        chunk = max(1, len(actions) // granularity)
        reduced = False
        for start in range(0, len(actions), chunk):
            trial = actions[:start] + actions[start + chunk:]
            if not trial:
                continue
            replays += 1
            if test(candidate(trial)):
                actions = trial
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if replays >= max_replays:
                break
        if not reduced:
            if granularity >= len(actions):
                break
            granularity = min(len(actions), granularity * 2)
    return candidate(actions)
