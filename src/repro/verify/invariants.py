"""Runtime invariant checker for the simulated machine.

:class:`InvariantChecker` installs itself on the observation hooks the
substrate exposes (simulator event loop, per-core voltage regulators,
the OCM write hook, the fault injector) and asserts, *while a run is in
progress*, the properties the reproduction's claims rest on:

``sim-monotonic``
    The event queue never hands the clock a time in the past.
``heap-hygiene``
    After every :meth:`~repro.kernel.sim.Simulator.run_until` window the
    event heap holds no cancelled entries and no entry behind the clock.
``ocm-roundtrip``
    Every MSR 0x150 transaction survives encode/decode round trips: the
    decoded offset re-encodes to the exact field bits, and the mailbox's
    millivolt view converts back to the same unit count (Algo 1 / Table 1
    are bit-exact inverses of each other).
``ocm-busy-bit``
    Commands carry bit 63 set; responses carry it cleared — the protocol
    ordering Sec. 2.3 describes.
``regulator-causality``
    A requested offset is not electrically effective before its settle
    latency elapses, the latency matches the direction-asymmetric
    :meth:`~repro.cpu.voltage_regulator.VoltageRegulator.latency_for`,
    and the transition lands exactly at ``request + latency``.
``fault-safe-state``
    No fault fires in a state the timing physics calls fault-free: the
    checker independently recomputes the violated-path fraction from
    :class:`~repro.timing.safety.SafetyAnalyzer` critical voltage and
    the model's sigma, and requires ``fraction >= ONSET_FRACTION``
    whenever the injector reports a fault (and the crash predicate
    whenever it reports a crash).  Note the analyzer's single critical
    voltage is *not* the fault onset — the Gaussian path population puts
    the onset ~2 sigma above it — so the recompute mirrors the margin
    model rather than ``is_safe`` alone.
``counter-conservation``
    Worker-reported telemetry counter increments merge into the engine
    session registry without loss or double counting, regardless of the
    executor (serial or process pool).

All hooks are ``None`` by default and each hot path pays exactly one
identity comparison when no checker is installed, so tier-1 timing
results stay byte-identical with verification off.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.cpu import ocm
from repro.cpu.msr import MSR_OC_MAILBOX
from repro.errors import InvariantViolation, ReproError
from repro.faults.margin import ONSET_FRACTION

#: Environment knob: a non-empty value other than ``0``/``false``/``no``
#: makes :meth:`Machine.build` install a checker on every machine it
#: assembles.  Result-affecting, therefore part of the engine job
#: fingerprint (see ``repro.engine.jobs.RESULT_AFFECTING_ENV``).
VERIFY_ENV = "REPRO_VERIFY"

#: Absolute slack for floating-point fraction comparisons; covers the
#: margin model's frequency-key rounding in its Vcrit cache.
_FRACTION_EPS = 1e-9

_SQRT2 = math.sqrt(2.0)


def verify_enabled_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Interpret the ``REPRO_VERIFY`` knob (unset/0/false/no = off)."""
    env = os.environ if environ is None else environ
    return env.get(VERIFY_ENV, "").strip().lower() not in ("", "0", "false", "no")


class InvariantChecker:
    """Asserts runtime invariants on one machine (and one engine session).

    Use :meth:`install` to attach to a built
    :class:`~repro.testbench.Machine`; every violation is recorded on
    :attr:`violations` and raised as
    :class:`~repro.errors.InvariantViolation` at the point of detection.
    The same instance may also serve as an
    :class:`~repro.engine.session.EngineSession` ``verifier`` for the
    counter-conservation invariant (no machine required for that role).
    """

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []
        self.checks = 0
        self._machine: Optional[Any] = None
        self._last_time = 0.0
        #: Flight recorder to notify before a violation is raised (see
        #: :class:`repro.observe.FlightRecorder`); picked up from the
        #: machine at :meth:`install` time, settable directly too.
        self.flight: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------------

    def install(self, machine: Any) -> "InvariantChecker":
        """Attach to every observation hook ``machine`` exposes."""
        if self._machine is machine:
            return self
        if self._machine is not None:
            raise ReproError("InvariantChecker is already installed on a machine")
        self._machine = machine
        self._last_time = machine.simulator.now
        if self.flight is None:
            self.flight = getattr(machine, "flight", None)
        machine.simulator.attach_observer(self)
        machine.processor.ocm_observer = self._on_ocm
        for core in machine.processor.cores:
            core.regulator.observer = self._on_regulator_transition
        fault_model = machine.fault_model
        machine.injector.observer = (
            lambda conditions, fault_count, crashed, instruction: self._on_fault(
                fault_model, conditions, fault_count, crashed, instruction
            )
        )
        return self

    def uninstall(self) -> None:
        """Detach from the machine's hooks (no-op when not installed)."""
        machine = self._machine
        if machine is None:
            return
        machine.simulator.detach_observer()
        machine.processor.ocm_observer = None
        for core in machine.processor.cores:
            core.regulator.observer = None
        machine.injector.observer = None
        self._machine = None

    # -- violation plumbing ------------------------------------------------------

    def _fail(self, invariant: str, message: str, **details) -> None:
        time_s = self._machine.simulator.now if self._machine is not None else 0.0
        violation = InvariantViolation(invariant, message, time_s=time_s, **details)
        self.violations.append(violation)
        if self.flight is not None:
            # Freeze the trace tail before unwinding destroys the scene.
            self.flight.on_violation(violation)
        raise violation

    # -- simulator observer (sim-monotonic, heap-hygiene) ------------------------

    def after_step(self, simulator: Any, event_time: float) -> None:
        self.checks += 1
        if event_time < self._last_time:
            self._fail(
                "sim-monotonic",
                "event loop moved the clock backwards",
                event_time=event_time,
                previous_time=self._last_time,
            )
        self._last_time = event_time

    def after_run_until(self, simulator: Any) -> None:
        self.checks += 1
        now = simulator.now
        if now < self._last_time:
            self._fail(
                "sim-monotonic",
                "run_until left the clock behind a processed event",
                now=now,
                previous_time=self._last_time,
            )
        self._last_time = now
        for entry_time, cancelled in simulator.pending_entries():
            if cancelled:
                self._fail(
                    "heap-hygiene",
                    "cancelled entry survived the run_until purge",
                    entry_time=entry_time,
                )
            if entry_time < now:
                self._fail(
                    "heap-hygiene",
                    "event heap holds an entry behind the clock",
                    entry_time=entry_time,
                    now=now,
                )

    # -- OCM observer (ocm-roundtrip, ocm-busy-bit) ------------------------------

    def _on_ocm(
        self,
        phase: str,
        core_index: int,
        value: int,
        command: Any,
        response: Optional[int],
    ) -> None:
        self.checks += 1
        if phase == "command":
            self._check_ocm_command(core_index, value, command)
        else:
            self._check_ocm_response(core_index, value, command, response)

    def _check_ocm_command(self, core_index: int, value: int, command: Any) -> None:
        if not value & ocm.BUSY_BIT:
            self._fail(
                "ocm-busy-bit",
                "mailbox accepted a command without bit 63 set",
                core=core_index,
                value=value,
            )
        command_byte = (value >> ocm.COMMAND_SHIFT) & ocm.COMMAND_MASK
        if command_byte != command.command:
            self._fail(
                "ocm-roundtrip",
                "decoded command byte disagrees with the written bits",
                core=core_index,
                written=command_byte,
                decoded=command.command,
            )
        plane_bits = (value >> ocm.PLANE_SHIFT) & ocm.PLANE_MASK
        if plane_bits != int(command.plane):
            self._fail(
                "ocm-roundtrip",
                "decoded plane disagrees with the written bits",
                core=core_index,
                written=plane_bits,
                decoded=int(command.plane),
            )
        try:
            reencoded = ocm.encode_offset_field(command.offset_units)
        except ReproError as error:
            self._fail(
                "ocm-roundtrip",
                "decoded offset does not re-encode",
                core=core_index,
                offset_units=command.offset_units,
                error=str(error),
            )
            return
        if reencoded != value & ocm.OFFSET_FIELD_MASK:
            self._fail(
                "ocm-roundtrip",
                "offset field does not survive a decode/encode round trip",
                core=core_index,
                field=value & ocm.OFFSET_FIELD_MASK,
                reencoded=reencoded,
            )
        if ocm.mv_to_units(command.offset_mv) != command.offset_units:
            self._fail(
                "ocm-roundtrip",
                "millivolt view does not convert back to the unit count",
                core=core_index,
                offset_mv=command.offset_mv,
                offset_units=command.offset_units,
            )

    def _check_ocm_response(
        self, core_index: int, value: int, command: Any, response: Optional[int]
    ) -> None:
        if response is None:
            self._fail(
                "ocm-busy-bit",
                "mailbox produced no response value",
                core=core_index,
            )
            return
        if response & ocm.BUSY_BIT:
            self._fail(
                "ocm-busy-bit",
                "response left bit 63 set (completion must clear it)",
                core=core_index,
                response=response,
            )
        plane_bits = (response >> ocm.PLANE_SHIFT) & ocm.PLANE_MASK
        if plane_bits != int(command.plane):
            self._fail(
                "ocm-roundtrip",
                "response plane disagrees with the command plane",
                core=core_index,
                response_plane=plane_bits,
                command_plane=int(command.plane),
            )
        responded_units = ocm.decode_offset_field(response)
        if command.is_write and responded_units != command.offset_units:
            self._fail(
                "ocm-roundtrip",
                "write response does not echo the written offset",
                core=core_index,
                responded_units=responded_units,
                offset_units=command.offset_units,
            )
        try:
            reencoded = ocm.encode_offset_field(responded_units)
        except ReproError as error:
            self._fail(
                "ocm-roundtrip",
                "response offset does not re-encode",
                core=core_index,
                responded_units=responded_units,
                error=str(error),
            )
            return
        if reencoded != response & ocm.OFFSET_FIELD_MASK:
            self._fail(
                "ocm-roundtrip",
                "response offset field does not survive a round trip",
                core=core_index,
                field=response & ocm.OFFSET_FIELD_MASK,
                reencoded=reencoded,
            )

    # -- regulator observer (regulator-causality) --------------------------------

    def _on_regulator_transition(
        self, regulator: Any, plane: Any, transition: Any, now: float
    ) -> None:
        self.checks += 1
        expected_latency = regulator.latency_for(
            transition.old_offset_mv, transition.new_offset_mv
        )
        if transition.latency_s != expected_latency:
            self._fail(
                "regulator-causality",
                "transition latency disagrees with the direction asymmetry",
                plane=plane.name,
                latency_s=transition.latency_s,
                expected_s=expected_latency,
            )
        if transition.settle_time != now + transition.latency_s:
            self._fail(
                "regulator-causality",
                "settle time is not request time plus latency",
                plane=plane.name,
                settle_time=transition.settle_time,
                request_time=now,
                latency_s=transition.latency_s,
            )
        if transition.latency_s > 0.0:
            applied_now = regulator.applied_offset_mv(plane, now)
            if not regulator.slew and applied_now != transition.old_offset_mv:
                self._fail(
                    "regulator-causality",
                    "offset became electrically effective before its settle latency",
                    plane=plane.name,
                    applied_mv=applied_now,
                    old_mv=transition.old_offset_mv,
                    new_mv=transition.new_offset_mv,
                )
            low = min(transition.old_offset_mv, transition.new_offset_mv)
            high = max(transition.old_offset_mv, transition.new_offset_mv)
            midpoint = regulator.applied_offset_mv(
                plane, now + transition.latency_s / 2.0
            )
            if not low <= midpoint <= high:
                self._fail(
                    "regulator-causality",
                    "mid-window offset escapes the [old, new] envelope",
                    plane=plane.name,
                    midpoint_mv=midpoint,
                    old_mv=transition.old_offset_mv,
                    new_mv=transition.new_offset_mv,
                )
        settled = regulator.applied_offset_mv(plane, transition.settle_time)
        if settled != transition.new_offset_mv:
            self._fail(
                "regulator-causality",
                "offset has not settled to the target at the settle time",
                plane=plane.name,
                applied_mv=settled,
                new_mv=transition.new_offset_mv,
            )

    # -- fault observer (fault-safe-state) ---------------------------------------

    def _violated_fraction(self, fault_model: Any, conditions: Any) -> float:
        """Recompute the violated-path fraction straight from the physics.

        Deliberately bypasses ``FaultModel.violated_fraction`` — the very
        code the injector consumes — so a mutation there cannot satisfy
        its own check.
        """
        vcrit = fault_model.analyzer.critical_voltage(
            conditions.frequency_ghz, temperature_c=fault_model.temperature_c
        )
        sigma_volts = fault_model.model.sigma_mv * 1e-3
        z = (vcrit - conditions.voltage_volts) / sigma_volts
        return 0.5 * (1.0 + math.erf(z / _SQRT2))

    def _on_fault(
        self,
        fault_model: Any,
        conditions: Any,
        fault_count: int,
        crashed: bool,
        instruction: str,
    ) -> None:
        self.checks += 1
        fraction = self._violated_fraction(fault_model, conditions)
        if fault_count > 0 and fraction < ONSET_FRACTION - _FRACTION_EPS:
            self._fail(
                "fault-safe-state",
                "fault fired in a state the timing physics calls fault-free",
                frequency_ghz=conditions.frequency_ghz,
                voltage_volts=conditions.voltage_volts,
                offset_mv=conditions.offset_mv,
                fraction=fraction,
                onset=ONSET_FRACTION,
                fault_count=fault_count,
                instruction=instruction,
            )
        below_retention = (
            conditions.voltage_volts < fault_model.model.process.v_retention_volts
        )
        crash_expected = (
            below_retention
            or fraction >= fault_model.model.crash_fraction - _FRACTION_EPS
        )
        if crashed and not crash_expected:
            self._fail(
                "fault-safe-state",
                "crash reported above the crash boundary",
                frequency_ghz=conditions.frequency_ghz,
                voltage_volts=conditions.voltage_volts,
                fraction=fraction,
                crash_fraction=fault_model.model.crash_fraction,
            )
        if not crashed and (
            below_retention
            or fraction >= fault_model.model.crash_fraction + _FRACTION_EPS
        ):
            self._fail(
                "fault-safe-state",
                "no crash reported below the crash boundary",
                frequency_ghz=conditions.frequency_ghz,
                voltage_volts=conditions.voltage_volts,
                fraction=fraction,
                crash_fraction=fault_model.model.crash_fraction,
            )

    # -- final sweep -------------------------------------------------------------

    def check_machine(self, machine: Optional[Any] = None) -> None:
        """End-of-run sweep over quiescent machine state.

        Complements the streaming checks: the event heap must be hygienic
        and every core's stored 0x150 value must be a completed response
        (busy bit clear).
        """
        machine = machine if machine is not None else self._machine
        if machine is None:
            raise ReproError("check_machine needs an installed or explicit machine")
        # A cancellation issued after the last run_until window (e.g. a
        # module unloaded while the clock is idle) legitimately leaves
        # its entry parked until the next purge; drain before auditing.
        machine.simulator.prune()
        self.after_run_until(machine.simulator)
        for core in machine.processor.cores:
            stored = machine.processor.msr.read(core.index, MSR_OC_MAILBOX)
            if stored & ocm.BUSY_BIT:
                self._fail(
                    "ocm-busy-bit",
                    "0x150 still reads busy after the run completed",
                    core=core.index,
                    stored=stored,
                )

    # -- engine counter conservation (counter-conservation) ----------------------

    def check_counter_conservation(
        self,
        before: Dict[str, int],
        after: Dict[str, int],
        results: Iterable[Any],
    ) -> None:
        """Session counters must grow by exactly the worker-reported sums.

        ``engine.*`` names are session-local bookkeeping (cache hits, jobs
        executed) and are exempt; every other counter delta must equal the
        sum of the corresponding :class:`JobResult.counters` entries.
        """
        self.checks += 1
        expected: Dict[str, int] = {}
        for result in results:
            for name, value in result.counters.items():
                expected[name] = expected.get(name, 0) + value
        for name in sorted(set(before) | set(after) | set(expected)):
            if name.startswith("engine."):
                continue
            delta = after.get(name, 0) - before.get(name, 0)
            if delta != expected.get(name, 0):
                self._fail(
                    "counter-conservation",
                    "merged counter delta disagrees with worker-reported sum",
                    counter=name,
                    delta=delta,
                    expected=expected.get(name, 0),
                )
