"""Paper-reference data for Table 2 and measured-vs-paper comparison.

The full Table 2 of the paper is transcribed here so the benchmark
harness and ``EXPERIMENTS.md`` can put the reproduced numbers side by
side with the published ones.  All values are as printed in the paper
(slowdowns are negative percentages; the with-polling score is the larger
time-like value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.bench.runner import OverheadReport


@dataclass(frozen=True)
class PaperRow:
    """One published Table 2 row."""

    name: str
    base_without: float
    base_with: float
    base_slowdown_pct: float
    peak_without: float
    peak_with: float
    peak_slowdown_pct: float


#: Table 2 as published (Comet Lake, microcode 0xf4).
PAPER_TABLE2: Tuple[PaperRow, ...] = (
    PaperRow("503.bwaves", 628.59, 628.9, -0.04, 604.21, 606.84, -0.43),
    PaperRow("507.cactuBSSN", 222.95, 223.03, -0.03, 202.87, 203.15, -0.13),
    PaperRow("508.namd_r", 175.96, 177.03, -0.6, 179.55, 182.51, -1.64),
    PaperRow("510.parest_r", 387.96, 388.41, -0.1, 324.46, 326.05, -0.49),
    PaperRow("511.povray_r", 328.67, 330.89, -0.67, 267.29, 268.05, -0.28),
    PaperRow("519.lbm_r", 224.08, 227.17, -1.37, 176.56, 176.72, -0.09),
    PaperRow("521.wrf_r", 404.21, 404.62, -0.1, 428.21, 431.12, -0.67),
    PaperRow("526.blender_r", 256.54, 257.71, -0.4, 239.52, 239.62, -0.04),
    PaperRow("527.cam4_r", 315.77, 317.94, -0.68, 324.12, 328.14, -1.24),
    PaperRow("538.imagick_r", 401.88, 403.56, -0.41, 318.06, 321.89, -1.2),
    PaperRow("544.nab_r", 315.25, 316.44, -0.37, 282.02, 282.47, -0.15),
    PaperRow("549.fotonik3d_r", 418.76, 420.44, -0.40, 415.46, 419.79, -1.04),
    PaperRow("554.roms_r", 322.51, 324.92, -0.74, 279.39, 279.53, -0.05),
    PaperRow("500.perlbench_r", 295.87511, 297.122, -0.42, 253.71, 264.47, -4.24),
    PaperRow("502.gcc_r", 221.4159, 221.64, -0.10, 218.91, 220.74, -0.83),
    PaperRow("505.mcf_r", 339.97, 344.05, -1.20, 297.68, 298.72, -0.34),
    PaperRow("520.omnetpp_r", 509.805, 513.139, -0.65, 479.08, 484.51, -1.13),
    PaperRow("523.xalancbmk_r", 287.7046, 288.331, -0.21, 283.57, 285.26, -0.59),
    PaperRow("525.x264_r", 318.11903, 322.651603, -1.42, 290.76, 294.05, -1.13),
    PaperRow("531.deepsjeng_r", 306.148284, 306.2156, -0.02, 284.09, 284.13, -0.01),
    PaperRow("541.leela_r", 417.2528, 417.6199, -0.08, 383.03, 386.19, -0.82),
    PaperRow("548.exchange2_r", 345.38, 345.85, -0.13, 248.6, 248.93, -0.13),
    PaperRow("557.xz_r", 387.71, 387.9, -0.04, 373.41, 374.82, -0.37),
)

PAPER_TABLE2_BY_NAME: Dict[str, PaperRow] = {r.name: r for r in PAPER_TABLE2}


def paper_mean_base_overhead() -> float:
    """Arithmetic mean of the published base-column slowdown magnitudes."""
    return float(np.mean([abs(r.base_slowdown_pct) for r in PAPER_TABLE2])) / 100.0


def paper_mean_peak_overhead() -> float:
    """Arithmetic mean of the published peak-column slowdown magnitudes."""
    return float(np.mean([abs(r.peak_slowdown_pct) for r in PAPER_TABLE2])) / 100.0


@dataclass(frozen=True)
class ComparisonRow:
    """Measured vs published slowdowns for one benchmark."""

    name: str
    measured_base_pct: float
    paper_base_pct: float
    measured_peak_pct: float
    paper_peak_pct: float


def compare_with_paper(report: OverheadReport) -> Tuple[ComparisonRow, ...]:
    """Line the reproduced Table 2 up against the published one."""
    rows = []
    for measured in report.rows:
        paper = PAPER_TABLE2_BY_NAME.get(measured.name)
        if paper is None:
            continue
        rows.append(
            ComparisonRow(
                name=measured.name,
                measured_base_pct=measured.base_slowdown * 100.0,
                paper_base_pct=paper.base_slowdown_pct,
                measured_peak_pct=measured.peak_slowdown * 100.0,
                paper_peak_pct=paper.peak_slowdown_pct,
            )
        )
    return tuple(rows)
