"""Synthetic SPEC CPU2017 rate suite.

Table 2 of the paper evaluates the polling module's overhead on the 23
SPECrate-2017 benchmarks on the Comet Lake machine, reporting base and
peak tuning numbers with and without polling.  SPEC itself is licensed
and unavailable here; what the experiment needs from it is (a) the set of
benchmark identities, (b) their without-polling reference scores, and
(c) realistic run-to-run measurement noise.  This module provides exactly
that: the catalog below transcribes the paper's *without polling* columns
as the reference scores, and the runner perturbs them with the simulated
polling module's actual CPU-time theft plus seeded measurement noise.

Each benchmark also carries a dominant instruction mix so it can double
as a victim workload in other experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class SPECBenchmark:
    """One SPECrate-2017 benchmark with its reference (no-polling) scores."""

    name: str
    suite: str  # "fp" or "int"
    reference_base: float  # Table 2 "Base rate (w/o polling)"
    reference_peak: float  # Table 2 "Peak rate (w/o polling)"
    #: Dominant faultable instruction class (used when the benchmark
    #: serves as a victim workload elsewhere).
    instruction: str = "add"
    #: Relative measurement-noise scale (some workloads are jittery).
    noise_scale: float = 1.0


#: The 23 benchmarks of Table 2 with the paper's without-polling columns.
SPEC2017_SUITE: Tuple[SPECBenchmark, ...] = (
    SPECBenchmark("503.bwaves", "fp", 628.59, 604.21, "mulsd", 0.7),
    SPECBenchmark("507.cactuBSSN", "fp", 222.95, 202.87, "mulsd", 0.6),
    SPECBenchmark("508.namd_r", "fp", 175.96, 179.55, "vmulpd", 1.4),
    SPECBenchmark("510.parest_r", "fp", 387.96, 324.46, "mulsd", 0.8),
    SPECBenchmark("511.povray_r", "fp", 328.67, 267.29, "mulsd", 1.0),
    SPECBenchmark("519.lbm_r", "fp", 224.08, 176.56, "mulsd", 1.2),
    SPECBenchmark("521.wrf_r", "fp", 404.21, 428.21, "mulsd", 0.9),
    SPECBenchmark("526.blender_r", "fp", 256.54, 239.52, "vmulpd", 0.7),
    SPECBenchmark("527.cam4_r", "fp", 315.77, 324.12, "mulsd", 1.1),
    SPECBenchmark("538.imagick_r", "fp", 401.88, 318.06, "vmulpd", 1.0),
    SPECBenchmark("544.nab_r", "fp", 315.25, 282.02, "mulsd", 0.6),
    SPECBenchmark("549.fotonik3d_r", "fp", 418.76, 415.46, "mulsd", 1.0),
    SPECBenchmark("554.roms_r", "fp", 322.51, 279.39, "mulsd", 0.8),
    SPECBenchmark("500.perlbench_r", "int", 295.87511, 253.71, "add", 1.3),
    SPECBenchmark("502.gcc_r", "int", 221.4159, 218.91, "add", 0.7),
    SPECBenchmark("505.mcf_r", "int", 339.97, 297.68, "load", 1.1),
    SPECBenchmark("520.omnetpp_r", "int", 509.805, 479.08, "load", 1.0),
    SPECBenchmark("523.xalancbmk_r", "int", 287.7046, 283.57, "load", 0.8),
    SPECBenchmark("525.x264_r", "int", 318.11903, 290.76, "imul", 1.2),
    SPECBenchmark("531.deepsjeng_r", "int", 306.148284, 284.09, "add", 0.4),
    SPECBenchmark("541.leela_r", "int", 417.2528, 383.03, "add", 0.7),
    SPECBenchmark("548.exchange2_r", "int", 345.38, 248.6, "add", 0.5),
    SPECBenchmark("557.xz_r", "int", 387.71, 373.41, "add", 0.6),
)

SPEC2017_BY_NAME: Dict[str, SPECBenchmark] = {b.name: b for b in SPEC2017_SUITE}

#: The paper's headline aggregate: mean polling overhead on Table 2.
PAPER_MEAN_OVERHEAD = 0.0028


def suite_names() -> Tuple[str, ...]:
    """Benchmark names in Table 2 order."""
    return tuple(b.name for b in SPEC2017_SUITE)
