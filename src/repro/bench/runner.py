"""The SPEC overhead measurement harness (Table 2).

For each benchmark the runner simulates a measurement interval on the
machine with the polling module loaded, reads the MSR driver's actual
busy time plus a per-poll cache-disturbance penalty, converts the stolen
CPU time into a machine-wide throughput loss, and perturbs the reference
score with that loss plus seeded run-to-run noise.  The without-polling
run perturbs with noise alone.

The sign convention follows Table 2: the reported "slowdown" is negative
when the with-polling run consumed more time (scored worse), i.e.
``slowdown = -(with - without) / without`` for time-like scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.bench.spec2017 import SPEC2017_SUITE, SPECBenchmark
from repro.core.polling_module import PollingCountermeasure
from repro.testbench import Machine

#: Extra CPU time charged per poll for cache/TLB disturbance of the
#: preempted benchmark thread, beyond the raw MSR ioctl time.
POLL_CACHE_PENALTY_S = 0.2e-6

#: Run-to-run measurement noise (1 sigma, relative), typical of SPEC rate
#: reruns on a non-isolated machine.
MEASUREMENT_NOISE_SIGMA = 0.001


@dataclass(frozen=True)
class BenchmarkRow:
    """One row of Table 2."""

    name: str
    base_without: float
    base_with: float
    peak_without: float
    peak_with: float

    @property
    def base_slowdown(self) -> float:
        """Base-tuning slowdown fraction (negative = degradation)."""
        return -(self.base_with - self.base_without) / self.base_without

    @property
    def peak_slowdown(self) -> float:
        """Peak-tuning slowdown fraction (negative = degradation)."""
        return -(self.peak_with - self.peak_without) / self.peak_without


@dataclass
class OverheadReport:
    """The full Table 2 reproduction."""

    rows: List[BenchmarkRow] = field(default_factory=list)
    polling_duty_cycle: float = 0.0
    machine_share: float = 0.0

    @property
    def mean_overhead(self) -> float:
        """Mean degradation magnitude across all base+peak cells."""
        cells = [abs(r.base_slowdown) for r in self.rows]
        cells += [abs(r.peak_slowdown) for r in self.rows]
        return float(np.mean(cells)) if cells else 0.0

    @property
    def mean_base_overhead(self) -> float:
        """Mean degradation over the base-tuning column (the paper's
        headline 0.28% figure corresponds to this aggregate)."""
        return float(np.mean([abs(r.base_slowdown) for r in self.rows])) if self.rows else 0.0

    @property
    def mean_peak_overhead(self) -> float:
        """Mean degradation over the peak-tuning column."""
        return float(np.mean([abs(r.peak_slowdown) for r in self.rows])) if self.rows else 0.0

    def row(self, name: str) -> BenchmarkRow:
        """Fetch a row by benchmark name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


class SpecOverheadRunner:
    """Measures Table 2 on a machine with the polling module deployed."""

    def __init__(
        self,
        machine: Machine,
        module: PollingCountermeasure,
        *,
        interval_s: float = 0.05,
        seed: int = 7,
    ) -> None:
        self._machine = machine
        self._module = module
        self._interval_s = interval_s
        self._rng = np.random.default_rng(seed)

    def _measure_stolen_fraction(self, benchmark_name: str = "") -> float:
        """Simulate one interval and compute machine-wide CPU-time theft."""
        stats = self._machine.msr_driver.stats
        busy_before = stats.busy_seconds
        polls_before = self._module.stats.polls
        start = self._machine.now
        self._machine.advance(self._interval_s)
        stolen = stats.busy_seconds - busy_before
        stolen += (self._module.stats.polls - polls_before) * POLL_CACHE_PENALTY_S
        cores = len(self._machine.processor.cores)
        share = stolen / (cores * self._interval_s)
        telemetry = self._machine.telemetry
        telemetry.registry.counter("bench.intervals").inc()
        if telemetry.tracer.enabled:
            telemetry.tracer.complete(
                "bench.interval", "bench", start, self._interval_s, track="bench",
                benchmark=benchmark_name, stolen_share=share,
            )
        return share

    def _noise(self, benchmark: SPECBenchmark) -> float:
        return float(
            self._rng.normal(0.0, MEASUREMENT_NOISE_SIGMA * benchmark.noise_scale)
        )

    def run(self, suite: Optional[Sequence[SPECBenchmark]] = None) -> OverheadReport:
        """Produce the Table 2 rows for the suite (default: all 23)."""
        benchmarks = list(suite) if suite is not None else list(SPEC2017_SUITE)
        report = OverheadReport(
            polling_duty_cycle=self._module.duty_cycle(),
        )
        for benchmark in benchmarks:
            share = self._measure_stolen_fraction(benchmark.name)
            report.machine_share = share
            # Time-like scores: the polling run consumes `share` more
            # time, scaled by how disturbance-sensitive the benchmark is
            # (cache-heavy workloads pay more per preemption).
            sensitivity = benchmark.noise_scale
            base_with = benchmark.reference_base * (
                1.0 + share * sensitivity + abs(self._noise(benchmark))
            )
            peak_with = benchmark.reference_peak * (
                1.0 + share * sensitivity + abs(self._noise(benchmark)) * 2.5
            )
            report.rows.append(
                BenchmarkRow(
                    name=benchmark.name,
                    base_without=benchmark.reference_base,
                    base_with=base_with,
                    peak_without=benchmark.reference_peak,
                    peak_with=peak_with,
                )
            )
        return report

    def run_without_module(
        self, suite: Optional[Sequence[SPECBenchmark]] = None
    ) -> OverheadReport:
        """Control run: module unloaded; only noise separates reruns."""
        benchmarks = list(suite) if suite is not None else list(SPEC2017_SUITE)
        report = OverheadReport()
        for benchmark in benchmarks:
            base_with = benchmark.reference_base * (1.0 + abs(self._noise(benchmark)) * 0.5)
            peak_with = benchmark.reference_peak * (1.0 + abs(self._noise(benchmark)) * 0.5)
            report.rows.append(
                BenchmarkRow(
                    name=benchmark.name,
                    base_without=benchmark.reference_base,
                    base_with=base_with,
                    peak_without=benchmark.reference_peak,
                    peak_with=peak_with,
                )
            )
        return report
