"""SPEC2017-style workload suite and the Table 2 overhead harness."""

from repro.bench.overhead import (
    PAPER_TABLE2,
    PAPER_TABLE2_BY_NAME,
    ComparisonRow,
    PaperRow,
    compare_with_paper,
    paper_mean_base_overhead,
    paper_mean_peak_overhead,
)
from repro.bench.runner import BenchmarkRow, OverheadReport, SpecOverheadRunner
from repro.bench.stats import (
    OverheadStatistics,
    bootstrap_mean_ci,
    geometric_mean,
    summarize_overhead,
)
from repro.bench.spec2017 import (
    PAPER_MEAN_OVERHEAD,
    SPEC2017_BY_NAME,
    SPEC2017_SUITE,
    SPECBenchmark,
    suite_names,
)

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE2_BY_NAME",
    "ComparisonRow",
    "PaperRow",
    "compare_with_paper",
    "paper_mean_base_overhead",
    "paper_mean_peak_overhead",
    "BenchmarkRow",
    "OverheadReport",
    "SpecOverheadRunner",
    "OverheadStatistics",
    "bootstrap_mean_ci",
    "geometric_mean",
    "summarize_overhead",
    "PAPER_MEAN_OVERHEAD",
    "SPEC2017_BY_NAME",
    "SPEC2017_SUITE",
    "SPECBenchmark",
    "suite_names",
]
