"""Aggregate statistics for benchmark reports.

The paper reports a single headline figure (0.28%); a careful artifact
also reports the geometric mean (SPEC's own aggregate convention) and a
bootstrap confidence interval so readers can judge whether the measured
overhead is distinguishable from run-to-run noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.runner import OverheadReport


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("bootstrap over an empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    means = np.empty(resamples)
    for i in range(resamples):
        means[i] = rng.choice(array, size=array.size, replace=True).mean()
    lower = float(np.percentile(means, (1.0 - confidence) / 2 * 100))
    upper = float(np.percentile(means, (1.0 + confidence) / 2 * 100))
    return lower, upper


@dataclass(frozen=True)
class OverheadStatistics:
    """Aggregate view of one Table 2 measurement."""

    mean_base: float
    mean_peak: float
    geomean_base: float
    ci_base_low: float
    ci_base_high: float

    def summary(self) -> str:
        """One-line rendering for reports."""
        return (
            f"base mean {self.mean_base * 100:.2f}% "
            f"(95% CI [{self.ci_base_low * 100:.2f}%, {self.ci_base_high * 100:.2f}%], "
            f"geomean {self.geomean_base * 100:.2f}%), "
            f"peak mean {self.mean_peak * 100:.2f}%"
        )


def summarize_overhead(report: OverheadReport, *, seed: int = 0) -> OverheadStatistics:
    """Compute the aggregate statistics for an overhead report."""
    base = [abs(row.base_slowdown) for row in report.rows]
    peak = [abs(row.peak_slowdown) for row in report.rows]
    if not base:
        raise ConfigurationError("empty overhead report")
    low, high = bootstrap_mean_ci(base, seed=seed)
    return OverheadStatistics(
        mean_base=float(np.mean(base)),
        mean_peak=float(np.mean(peak)),
        geomean_base=geometric_mean(base),
        ci_base_low=low,
        ci_base_high=high,
    )
