"""Command-line interface.

Exposes the reproduction's main flows without writing Python::

    python -m repro list-cpus
    python -m repro characterize --cpu "Comet Lake" --map
    python -m repro characterize --cpu "Sky Lake" --json skylake.json
    python -m repro attack --cpu "Comet Lake" --attack plundervolt
    python -m repro attack --cpu "Comet Lake" --attack imul --protect
    python -m repro campaign --workers 4
    python -m repro campaign --checkpoint ckpt/   # killable; resume below
    python -m repro campaign --resume ckpt/
    python -m repro chaos --budget 60 --out chaos.json
    python -m repro spec
    python -m repro maximal
    python -m repro profile --out profile.speedscope.json
    python -m repro campaign --report run.json && python -m repro report run.json
    python -m repro metrics serve --port 8787 --duration 30
    python -m repro runs list --cpu "Comet Lake"
    python -m repro runs show <run-id>
    python -m repro reproduce <run-id>          # byte-identity re-execution
    python -m repro diff <run-a> <run-b>
    python -m repro trajectory record engine_campaign --from bench.json \\
        --metric serial_seconds --file benchmarks/trajectories/BENCH_engine_campaign.json
    python -m repro trajectory check engine_campaign --value 1.9
    python -m repro status --registry
    python -m repro campaign --workers 2 --spans trace.json
    python -m repro spans <run-id> --export trace.json
    python -m repro top --url http://127.0.0.1:8787/metrics --once

Every heavy flow goes through the campaign engine (:mod:`repro.engine`):
characterization sweeps are cached per content hash, and ``repro
campaign`` can shard the Sec. 4.3 attack matrix across a process pool
(``--executor process --workers N``, or the ``REPRO_EXECUTOR`` /
``REPRO_WORKERS`` environment variables).  All per-command randomness is
drawn from named seed streams under ``--seed`` rather than ad-hoc
``seed + N`` offsets.
"""

from __future__ import annotations

import argparse
import json as _json
import logging
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.export import (
    boundary_to_csv,
    characterization_to_json,
    overhead_to_csv,
    write_text,
)
from repro.analysis.regions import summarize
from repro.analysis.report import (
    render_boundary_series,
    render_characterization_map,
    render_table,
)
from repro.core.adaptive import AdaptiveCharacterization
from repro.core.polling_module import PollingCountermeasure
from repro.cpu.models import PAPER_MODELS, PAPER_MODEL_TUPLE, model_by_codename
from repro.engine import get_session, seed_stream


def _characterize(model, seed: int, batch=None):
    """The cached Algo 2 sweep for ``model`` via the engine session.

    ``batch=None`` defers to the environment (``REPRO_BATCH``, default
    on); the ``--batch/--no-batch`` flags pass an explicit override.
    """
    return get_session().characterize(model, seed=seed, batch=batch)


def _cli_seed(root: int, command: str, codename: str) -> int:
    """Machine seed for one CLI command, drawn from a named stream."""
    return seed_stream(root, "cli", command, codename).integer()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Plug Your Volt (DAC 2024) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=5, help="deterministic seed")
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="configure logging for the repro.* loggers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-cpus", help="list the simulated CPU models")

    characterize = sub.add_parser(
        "characterize", help="run Algorithm 2 and print the safe/unsafe boundary"
    )
    characterize.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    characterize.add_argument(
        "--adaptive", action="store_true", help="bisection instead of the full grid"
    )
    characterize.add_argument("--map", action="store_true", help="print the ASCII map")
    characterize.add_argument("--json", metavar="PATH", help="export bundle as JSON")
    characterize.add_argument("--csv", metavar="PATH", help="export boundary as CSV")
    characterize.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="vectorized sweep evaluator (default: on unless REPRO_BATCH=0; "
        "--no-batch forces the scalar oracle)",
    )

    attack = sub.add_parser("attack", help="mount an attack campaign")
    attack.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    attack.add_argument(
        "--attack",
        choices=("imul", "plundervolt", "v0ltpwn", "voltjockey", "aes-dfa"),
        default="imul",
    )
    attack.add_argument(
        "--protect", action="store_true", help="deploy the polling module first"
    )

    campaign = sub.add_parser(
        "campaign",
        help="run the Sec. 4.3 prevention matrix through the campaign engine",
    )
    campaign.add_argument(
        "--cpu", default=None, help="restrict to one CPU codename (default: all three)"
    )
    campaign.add_argument(
        "--executor",
        choices=("serial", "process", "remote"),
        default=None,
        help="engine executor (default: REPRO_EXECUTOR or serial)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (implies --executor process)",
    )
    campaign.add_argument(
        "--remote",
        metavar="URL",
        default=None,
        help="shard the campaign through a coordinator (repro serve) at "
        "this URL (implies --executor remote); degrades to local "
        "execution if it stays unreachable",
    )
    campaign.add_argument(
        "--remote-wait",
        type=float,
        metavar="SECONDS",
        default=None,
        help="give up on remote results after this long without "
        "completion and finish the batch locally (default: wait)",
    )
    campaign.add_argument(
        "--no-aes", action="store_true", help="skip the AES-DFA campaign"
    )
    campaign.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="vectorized characterization sweeps for the campaign's "
        "unsafe-set inputs (default: on unless REPRO_BATCH=0)",
    )
    campaign.add_argument(
        "--json", metavar="PATH", help="write matrix + engine stats as JSON"
    )
    campaign.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the engine run manifest (run.json) after the campaign",
    )
    campaign.add_argument(
        "--serve-port",
        type=int,
        default=None,
        help="serve live OpenMetrics on this port while the campaign runs "
        "(watch it with: repro top --port PORT)",
    )
    campaign.add_argument(
        "--spans",
        metavar="PATH",
        default=None,
        help="export the merged fleet span timeline as a Chrome trace "
        "(sim-time fields; byte-identical across executors)",
    )
    campaign.add_argument(
        "--spans-wall",
        metavar="PATH",
        default=None,
        help="also export the wall-clock span sidecar (non-deterministic)",
    )
    campaign.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="persist completed jobs into this checkpoint directory as "
        "they land (a killed campaign becomes resumable)",
    )
    campaign.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="resume from a checkpoint directory: jobs completed by the "
        "interrupted run are served from it, not re-executed "
        "(implies --checkpoint DIR)",
    )

    explore = sub.add_parser(
        "explore",
        help="exhaustively map the RSA-CRT fault space (ARMORY-style)",
    )
    explore_sub = explore.add_subparsers(dest="explore_command", required=True)
    e_run = explore_sub.add_parser(
        "run", help="enumerate, prune and simulate one explore plan"
    )
    e_run.add_argument("--cpu", default="Sky Lake", help="CPU codename")
    e_run.add_argument(
        "--protect",
        action="store_true",
        help="characterize first and load the polling countermeasure",
    )
    e_run.add_argument(
        "--key-bits", type=int, default=128, help="RSA key size (default 128)"
    )
    e_run.add_argument(
        "--frequencies",
        metavar="GHZ[,GHZ...]",
        default=None,
        help="comma-separated frequency list (default: every 6th table entry)",
    )
    e_run.add_argument(
        "--offsets",
        metavar="MV[,MV...]",
        default=None,
        help="comma-separated undervolt offsets (default: -40..-280 step 40)",
    )
    e_run.add_argument(
        "--models",
        metavar="NAME[,NAME...]",
        default=None,
        help="fault models (default: flip:0,flip:63,trunc64,zero)",
    )
    e_run.add_argument(
        "--rows-per-job",
        type=int,
        default=8,
        help="fault-space elements per engine job shard (pure scheduling)",
    )
    e_run.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="engine executor (default: REPRO_EXECUTOR or serial)",
    )
    e_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (implies --executor process)",
    )
    e_run.add_argument(
        "--json", metavar="PATH", default=None, help="write the canonical map here"
    )
    e_report = explore_sub.add_parser(
        "report",
        help="render a coverage report from one or two exploitability maps "
        "(with two, nonzero exit unless the defended map's exploitable "
        "set is exactly empty)",
    )
    e_report.add_argument("open_map", metavar="OPEN_JSON", help="undefended map")
    e_report.add_argument(
        "protected_map",
        metavar="PROTECTED_JSON",
        nargs="?",
        default=None,
        help="defended map to diff against",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz adversarial DVFS schedules under the runtime invariant checker",
    )
    fuzz.add_argument(
        "--cpu", default=None, help="restrict to one CPU codename (default: all three)"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="deterministic seed (same as the global --seed)",
    )
    fuzz.add_argument(
        "--budget", type=int, default=200,
        help="total fuzz cases, split across the selected CPUs",
    )
    fuzz.add_argument(
        "--actions", type=int, default=12, help="actions per fuzzed schedule"
    )
    fuzz.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="engine executor (default: REPRO_EXECUTOR or serial)",
    )
    fuzz.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (implies --executor process)",
    )
    fuzz.add_argument(
        "--no-module",
        action="store_true",
        help="skip characterization; module load/unload actions become no-ops",
    )
    fuzz.add_argument(
        "--out",
        metavar="PATH",
        default="fuzz-repro.json",
        help="shrunk-repro artifact path (written only on a violation)",
    )
    fuzz.add_argument(
        "--replay",
        metavar="PATH",
        default=None,
        help="replay a repro artifact or flight-recorder dump under the "
        "checker instead of fuzzing",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection harness: run a campaign twice under seeded "
        "worker kills / errors / stalls / torn cache writes and prove the "
        "results converge byte-for-byte",
    )
    chaos.add_argument(
        "--cpu", default=None, help="restrict to one CPU codename (default: all three)"
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="deterministic seed (same as the global --seed)",
    )
    chaos.add_argument(
        "--budget", type=int, default=60,
        help="total fuzz-case jobs, split across the selected CPUs",
    )
    chaos.add_argument(
        "--actions", type=int, default=8, help="actions per fuzz-case job"
    )
    chaos.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="seed of the chaos decision stream (default: --seed)",
    )
    chaos.add_argument(
        "--kill-rate", type=float, default=0.05,
        help="probability a first attempt os._exit()s its worker",
    )
    chaos.add_argument(
        "--error-rate", type=float, default=0.10,
        help="probability a first attempt raises an injected ChaosError",
    )
    chaos.add_argument(
        "--stall-rate", type=float, default=0.05,
        help="probability a first attempt stalls past the job timeout",
    )
    chaos.add_argument(
        "--torn-rate", type=float, default=0.10,
        help="probability a result's cache entry is torn after the write",
    )
    chaos.add_argument(
        "--stall-s", type=float, default=0.75, help="injected stall length (s)"
    )
    chaos.add_argument(
        "--timeout", type=float, default=0.35,
        help="per-attempt wall-clock timeout (s)",
    )
    chaos.add_argument(
        "--retries", type=int, default=3, help="max attempts per job"
    )
    chaos.add_argument(
        "--off",
        action="store_true",
        help="disable all injection: the clean baseline whose --out "
        "artifact a chaos run must match byte-for-byte",
    )
    chaos.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="back the result cache with this directory so torn writes "
        "hit real files (and leave .corrupt quarantines behind)",
    )
    chaos.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the canonical campaign results as JSON (identical "
        "bytes for chaos-on and --off runs of the same seed)",
    )

    spec = sub.add_parser("spec", help="reproduce Table 2 (SPEC2017 overhead)")
    spec.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    spec.add_argument("--csv", metavar="PATH", help="export rows as CSV")

    sub.add_parser("maximal", help="print each CPU's maximal safe state (Sec. 5)")

    trace = sub.add_parser(
        "trace", help="watch the countermeasure intercept one attack write"
    )
    trace.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    trace.add_argument("--offset", type=int, default=-250, help="attack offset (mV)")
    trace.add_argument(
        "--export",
        choices=("jsonl", "chrome"),
        default=None,
        help="also export the structured telemetry trace of the run",
    )
    trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="trace output path (default: trace.jsonl / trace.json; "
        "implies --export chrome when given alone)",
    )

    energy = sub.add_parser(
        "energy", help="power saved by safe-band undervolting per frequency"
    )
    energy.add_argument("--cpu", default="Comet Lake", help="CPU codename")

    verify = sub.add_parser(
        "verify", help="deploy the module and run the acceptance test"
    )
    verify.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    verify.add_argument("--samples", type=int, default=10, help="unsafe cells to probe")

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate a paper artifact, or re-execute a recorded "
        "registry run and assert byte-identity of every result",
    )
    reproduce.add_argument(
        "run_id",
        nargs="?",
        metavar="RUN_ID",
        default=None,
        help="registry run id (or unique prefix): re-execute every "
        "recorded job under the recorded environment and fail with a "
        "per-job diff unless every payload reproduces byte-for-byte",
    )
    reproduce.add_argument(
        "--experiment",
        choices=("fig2", "fig3", "fig4", "table2", "prevention", "maximal"),
        default=None,
    )
    reproduce.add_argument("--out", metavar="PATH", help="also write the artifact here")
    reproduce.add_argument(
        "--registry",
        metavar="DIR",
        default=None,
        help="registry directory (default: REPRO_REGISTRY_DIR or ~/.repro/registry)",
    )
    reproduce.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the per-job reproduction report as JSON (RUN_ID mode)",
    )

    runs = sub.add_parser("runs", help="query the local run registry")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list recorded runs, newest first")
    runs_list.add_argument("--cpu", default=None, help="filter by CPU codename")
    runs_list.add_argument(
        "--status",
        choices=("complete", "quarantined"),
        default=None,
        help="filter by run status",
    )
    runs_list.add_argument(
        "--since",
        metavar="ISO_DATE",
        default=None,
        help="only runs recorded at or after this UTC date/time",
    )
    runs_list.add_argument(
        "--spec",
        metavar="FINGERPRINT",
        default=None,
        help="only runs containing a job whose spec fingerprint starts with this",
    )
    runs_list.add_argument(
        "--limit", type=int, default=None, help="show at most N runs"
    )
    runs_list.add_argument(
        "--porcelain",
        action="store_true",
        help="print full run ids only, one per line (for scripts)",
    )
    runs_list.add_argument("--registry", metavar="DIR", default=None)
    runs_show = runs_sub.add_parser(
        "show", help="everything recorded about one run"
    )
    runs_show.add_argument("run_id", metavar="RUN_ID", help="run id or unique prefix")
    runs_show.add_argument("--registry", metavar="DIR", default=None)

    diff = sub.add_parser(
        "diff",
        help="attribute the drift between two recorded runs "
        "(code vs environment vs spec vs results)",
    )
    diff.add_argument("run_a", metavar="RUN_A", help="run id or unique prefix")
    diff.add_argument("run_b", metavar="RUN_B", help="run id or unique prefix")
    diff.add_argument("--registry", metavar="DIR", default=None)
    diff.add_argument(
        "--json", action="store_true", help="emit the structured diff as JSON"
    )

    spans = sub.add_parser(
        "spans",
        help="inspect or export the span timeline recorded with a run",
    )
    spans.add_argument("run_id", metavar="RUN_ID", help="run id or unique prefix")
    spans.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="write the sim-time timeline as a trace file instead of "
        "printing the digest",
    )
    spans.add_argument(
        "--fmt",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="trace format for --export (chrome opens in ui.perfetto.dev)",
    )
    spans.add_argument(
        "--wall",
        metavar="PATH",
        default=None,
        help="also write the wall-clock sidecar trace (non-deterministic)",
    )
    spans.add_argument(
        "--json",
        action="store_true",
        help="dump the stored timeline document as JSON",
    )
    spans.add_argument("--registry", metavar="DIR", default=None)

    top = sub.add_parser(
        "top",
        help="live dashboard over a campaign's OpenMetrics endpoint "
        "(progress, worker occupancy, queue/exec latency)",
    )
    top.add_argument(
        "--url",
        default=None,
        help="metrics URL (default: http://127.0.0.1:PORT/metrics)",
    )
    top.add_argument(
        "--port",
        type=int,
        default=8787,
        help="port for the default URL (matches campaign --serve-port)",
    )
    top.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=None,
        help="refresh interval in seconds (default: 2)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N frames (default: run until interrupted)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a campaign coordinator: lease jobs to repro work agents, "
        "dedup results fleet-wide, serve /metrics",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: pick a free ephemeral port and "
        "print it)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result-store directory (default: a fresh temp directory)",
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat deadline after which a worker's lease expires and "
        "its jobs are re-leased (default: 15)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long then exit (default: until interrupted)",
    )

    work = sub.add_parser(
        "work",
        help="run a worker agent: lease jobs from a coordinator, execute, "
        "publish results",
    )
    work.add_argument(
        "--coordinator",
        metavar="URL",
        required=True,
        help="coordinator base URL (printed by repro serve)",
    )
    work.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="jobs to lease per batch (default: 2)",
    )
    work.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name for leases and spans (default: host-pid)",
    )
    work.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long with no work (default: poll forever)",
    )

    trajectory = sub.add_parser(
        "trajectory",
        help="append and gate perf-trajectory points (BENCH_<name>.json)",
    )
    trajectory_sub = trajectory.add_subparsers(
        dest="trajectory_command", required=True
    )
    t_record = trajectory_sub.add_parser(
        "record", help="append one canonical point to a bench trajectory"
    )
    t_record.add_argument("bench", metavar="BENCH", help="bench name")
    t_record.add_argument(
        "--value", type=float, default=None, help="the metric value itself"
    )
    t_record.add_argument(
        "--from",
        dest="artifact",
        metavar="JSON",
        default=None,
        help="pull the value out of this benchmark artifact instead",
    )
    t_record.add_argument(
        "--metric", default="value", help="metric name (key in --from artifacts)"
    )
    t_record.add_argument("--unit", default="s", help="metric unit (default: s)")
    t_record.add_argument(
        "--higher-better",
        action="store_true",
        help="larger values are better (default: lower is better)",
    )
    t_record.add_argument(
        "--file",
        metavar="PATH",
        default=None,
        help="also append to this BENCH_<name>.json file "
        "(the committed baseline format)",
    )
    t_record.add_argument(
        "--run", metavar="RUN_ID", default=None, help="attribute to this run id"
    )
    t_record.add_argument("--registry", metavar="DIR", default=None)
    t_record.add_argument(
        "--no-registry",
        action="store_true",
        help="write only the --file, skip the registry trajectory table",
    )
    t_check = trajectory_sub.add_parser(
        "check",
        help="gate a candidate point against a committed baseline "
        "trajectory (nonzero exit on regression)",
    )
    t_check.add_argument("bench", metavar="BENCH", help="bench name")
    t_check.add_argument("--value", type=float, default=None)
    t_check.add_argument("--from", dest="artifact", metavar="JSON", default=None)
    t_check.add_argument("--metric", default="value")
    t_check.add_argument(
        "--higher-better",
        action="store_true",
        help="larger values are better (default: lower is better)",
    )
    t_check.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline trajectory file "
        "(default: benchmarks/trajectories/BENCH_<bench>.json)",
    )
    t_check.add_argument(
        "--max-regress",
        type=float,
        default=None,
        help="allowed regression ratio (default: 0.25 = 25%%)",
    )
    t_list = trajectory_sub.add_parser(
        "list", help="the benches with recorded trajectories and their latest points"
    )
    t_list.add_argument("--registry", metavar="DIR", default=None)

    status = sub.add_parser(
        "status", help="render a /proc/cpuinfo-style snapshot of a protected machine"
    )
    status.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    status.add_argument(
        "--registry",
        metavar="DIR",
        nargs="?",
        const="auto",
        default=None,
        help="show run-registry status instead (runs, store size, dedup "
        "hit-rate, latest trajectory points); optional DIR overrides "
        "REPRO_REGISTRY_DIR",
    )

    profile = sub.add_parser(
        "profile",
        help="profile the dispatch loop of a protected attack run "
        "(deterministic flamegraph artifacts)",
    )
    profile.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    profile.add_argument(
        "--iterations",
        type=int,
        default=200_000,
        help="imul iterations per campaign sweep point",
    )
    profile.add_argument(
        "--out",
        metavar="PATH",
        default="profile.speedscope.json",
        help="speedscope profile path (open in https://www.speedscope.app)",
    )
    profile.add_argument(
        "--collapsed",
        metavar="PATH",
        default=None,
        help="also write a collapsed-stack file for flamegraph.pl/inferno",
    )
    profile.add_argument(
        "--wall",
        metavar="PATH",
        default=None,
        help="also write the wall-clock sidecar (non-deterministic) as JSON",
    )

    report = sub.add_parser(
        "report", help="render an engine run manifest (run.json) as Markdown"
    )
    report.add_argument("path", metavar="RUN_JSON", help="manifest path")
    report.add_argument(
        "--md",
        metavar="PATH",
        default=None,
        help="write the Markdown here instead of printing it",
    )

    metrics = sub.add_parser(
        "metrics", help="live telemetry serving (OpenMetrics over HTTP)"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    serve = metrics_sub.add_parser(
        "serve",
        help="drive a protected machine and serve its registry on /metrics",
    )
    serve.add_argument("--cpu", default="Comet Lake", help="CPU codename")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = auto-assign)"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="wall-clock seconds to serve before shutting down",
    )

    observe = sub.add_parser(
        "observe", help="post-mortem tooling for flight-recorder dumps"
    )
    observe_sub = observe.add_subparsers(dest="observe_command", required=True)
    replay = observe_sub.add_parser(
        "replay",
        help="replay the schedule embedded in a flight-recorder dump",
    )
    replay.add_argument(
        "path",
        metavar="DUMP_OR_RUN",
        help="flight dump (JSONL), or a registry run id whose recorded "
        "dumps should be replayed",
    )
    replay.add_argument("--registry", metavar="DIR", default=None)
    return parser


def _cmd_list_cpus() -> int:
    rows = [
        (
            model.codename,
            model.name,
            f"0x{model.microcode:x}",
            f"{model.frequency_table.min_ghz}-{model.frequency_table.max_ghz} GHz",
        )
        for model in PAPER_MODEL_TUPLE
    ]
    print(render_table(["codename", "model", "microcode", "frequency range"], rows))
    return 0


def _cmd_characterize(args) -> int:
    model = model_by_codename(args.cpu)
    if args.adaptive:
        outcome = AdaptiveCharacterization(model, seed=args.seed).run()
        result = outcome.result
        print(f"adaptive characterization: {outcome.probes} probes, "
              f"{outcome.crashes} crashes")
    else:
        result = _characterize(model, args.seed, batch=args.batch)
        print(f"full sweep: {len(result.cells)} cells, {result.crashes} crashes")
    print(render_boundary_series(result))
    summary = summarize(result)
    print(f"\nmaximal safe state: {summary.maximal_safe_mv:.0f} mV")
    if args.map:
        print()
        print(render_characterization_map(result))
    if args.json:
        path = write_text(args.json, characterization_to_json(result))
        print(f"JSON bundle written to {path}")
    if args.csv:
        path = write_text(args.csv, boundary_to_csv(result))
        print(f"boundary CSV written to {path}")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import (
        ImulCampaign,
        PlundervoltAttack,
        PlundervoltConfig,
        RSACRTSigner,
        RSAKey,
        V0ltpwnAttack,
        V0ltpwnConfig,
        VectorChecksumPayload,
        VoltJockeyAttack,
        VoltJockeyConfig,
    )
    from repro.sgx import EnclaveHost
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    machine = Machine.build(model, seed=_cli_seed(args.seed, "attack", model.codename))
    if args.protect:
        unsafe = _characterize(model, args.seed).unsafe_states
        machine.modules.insmod(PollingCountermeasure(machine, unsafe))
        print("polling countermeasure deployed")

    base = model.frequency_table.base_ghz
    if args.attack == "imul":
        campaign = ImulCampaign(
            machine,
            frequency_ghz=base,
            offsets_mv=tuple(range(-60, -301, -10)),
            iterations_per_point=500_000,
        )
        outcome = campaign.mount()
    elif args.attack == "plundervolt":
        host = EnclaveHost(machine)
        enclave = host.create_enclave("rsa")
        outcome = PlundervoltAttack(
            machine,
            enclave,
            RSACRTSigner(RSAKey.generate(512, seed=args.seed)),
            message=0xDEADBEEF,
            config=PlundervoltConfig(frequency_ghz=base),
        ).mount()
    elif args.attack == "v0ltpwn":
        host = EnclaveHost(machine)
        enclave = host.create_enclave("vec")
        outcome = V0ltpwnAttack(
            machine,
            enclave,
            VectorChecksumPayload(ops=500_000),
            V0ltpwnConfig(frequency_ghz=base),
        ).mount()
    elif args.attack == "aes-dfa":
        from repro.attacks import AESDFAAttack, AESDFAConfig

        key = bytes(range(16))
        outcome = AESDFAAttack(
            machine, key, AESDFAConfig(frequency_ghz=base)
        ).mount()
    else:
        low = model.frequency_table.min_ghz
        high = model.frequency_table.max_ghz
        outcome = VoltJockeyAttack(
            machine, VoltJockeyConfig(low_frequency_ghz=low, high_frequency_ghz=high)
        ).mount()

    print(render_table(
        ["attack", "succeeded", "faults", "attempts", "crashes", "writes blocked"],
        [(
            outcome.attack,
            "yes" if outcome.succeeded else "no",
            outcome.faults_observed,
            outcome.attempts,
            outcome.crashes,
            outcome.writes_blocked,
        )],
    ))
    for note in outcome.notes:
        print(f"note: {note}")
    return 0 if not outcome.succeeded else 1


def _cmd_explore(args) -> int:
    from repro.explore import (
        DEFAULT_FAULT_MODELS,
        ExplorePlan,
        canonical_json,
        coverage_holds,
        load_map,
        render_report,
    )

    if args.explore_command == "report":
        open_map = load_map(args.open_map)
        protected_map = (
            load_map(args.protected_map) if args.protected_map else None
        )
        print(render_report(open_map, protected_map))
        if protected_map is None:
            return 0
        return 0 if coverage_holds(open_map, protected_map) else 1

    from repro.engine import EngineSession, RetryPolicy, make_executor, set_session

    model = model_by_codename(args.cpu)
    if args.executor is not None or args.workers is not None:
        executor = make_executor(
            args.executor or "process",
            workers=args.workers,
            policy=RetryPolicy.from_env(),
        )
        session = set_session(EngineSession(executor=executor))
    else:
        session = get_session()
    table = model.frequency_table
    frequencies = (
        tuple(float(raw) for raw in args.frequencies.split(","))
        if args.frequencies
        else tuple(list(table.frequencies_ghz())[::6])
    )
    offsets = (
        tuple(int(raw) for raw in args.offsets.split(","))
        if args.offsets
        else tuple(range(-40, -281, -40))
    )
    models = (
        tuple(args.models.split(",")) if args.models else DEFAULT_FAULT_MODELS
    )
    unsafe_json = None
    if args.protect:
        result = _characterize(model, args.seed)
        unsafe_json = _json.dumps(result.unsafe_states.to_dict(), sort_keys=True)
        print("polling countermeasure deployed per probed machine")
    plan = ExplorePlan(
        codename=model.codename,
        frequencies_ghz=frequencies,
        offsets_mv=offsets,
        fault_models=models,
        key_bits=args.key_bits,
        protect=args.protect,
        unsafe_json=unsafe_json,
        seed=args.seed,
    )
    document = session.explore(plan, rows_per_job=args.rows_per_job)
    stats, summary = document["stats"], document["summary"]
    print(render_table(
        ["axis", "enumerated", "pruned", "simulated"],
        [
            (
                "points",
                stats["points_enumerated"],
                stats["points_pruned_safe"],
                stats["points_probed"],
            ),
            (
                "injections",
                stats["injections_enumerated"],
                stats["injections_pruned_masked"]
                + stats["injections_pruned_equivalent"],
                stats["injections_simulated"],
            ),
        ],
        title=f"Fault-space exploration: {model.codename} "
        f"({'protected' if args.protect else 'open'})",
    ))
    print(
        f"feasible points: {summary['feasible_points']}  "
        f"crash points: {summary['crash_points']}  "
        f"exploitable pairs: {summary['exploitable_pairs']}  "
        f"exploitable points: {summary['exploitable_points']}"
    )
    run_id = session.record_run()
    if run_id:
        print(f"recorded as run {run_id[:12]}")
    if args.json:
        write_text(Path(args.json), canonical_json(document))
        print(f"map written to {args.json}")
    return 0


def _cmd_campaign(args) -> int:
    from repro import experiments
    from repro.engine import (
        CampaignCheckpoint,
        EngineSession,
        Quarantined,
        RetryPolicy,
        executor_from_env,
        make_executor,
        set_session,
    )

    checkpoint_dir = args.resume or args.checkpoint
    checkpoint = (
        CampaignCheckpoint(checkpoint_dir) if checkpoint_dir is not None else None
    )
    if args.resume and checkpoint is not None:
        print(f"resuming from checkpoint {checkpoint_dir} "
              f"({checkpoint.completed_count()} job(s) already completed)")
    if args.remote is not None or args.executor == "remote":
        from repro.serve import RemoteExecutor

        url = args.remote or os.environ.get("REPRO_COORDINATOR")
        if not url:
            print("campaign: --executor remote needs --remote URL "
                  "(or REPRO_COORDINATOR)", file=sys.stderr)
            return 2
        executor = RemoteExecutor(
            url, policy=RetryPolicy.from_env(), max_wait_s=args.remote_wait
        )
        session = set_session(
            EngineSession(executor=executor, checkpoint=checkpoint)
        )
    elif args.executor is not None or args.workers is not None:
        executor = make_executor(
            args.executor or "process",
            workers=args.workers,
            policy=RetryPolicy.from_env(),
        )
        session = set_session(
            EngineSession(executor=executor, checkpoint=checkpoint)
        )
    elif checkpoint is not None:
        session = set_session(
            EngineSession(executor=executor_from_env(), checkpoint=checkpoint)
        )
    else:
        session = get_session()
    server = None
    if args.serve_port is not None:
        from repro.observe import MetricsServer

        # Touch the counters the countermeasure reports so the scrape
        # output declares the metric families from the first request,
        # even before the first worker batch merges its increments.
        session.telemetry.registry.counter("countermeasure.polls")
        session.telemetry.registry.counter("countermeasure.detections")
        # Serve the composite view: deterministic telemetry plus the
        # wall-clock occupancy/latency instruments `repro top` charts.
        from repro.errors import ObserveError

        try:
            server = MetricsServer(
                provider=lambda: session.metrics_view(), port=args.serve_port
            ).start()
        except ObserveError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        # server.port, not args.serve_port: --serve-port 0 binds an
        # ephemeral port and the printed line is how callers learn it.
        print(f"serving OpenMetrics at {server.url} "
              f"(watch with: repro top --port {server.port})", flush=True)
    try:
        jobs = experiments.prevention_jobs(
            seed=args.seed, include_aes=not args.no_aes, batch=args.batch
        )
        if args.cpu:
            codename = model_by_codename(args.cpu).codename
            jobs = [job for job in jobs if job.codename == codename]
        outcomes = session.run_jobs(jobs)
    finally:
        if server is not None:
            server.stop()
    rows = []
    quarantined = 0
    for job, outcome in zip(jobs, outcomes):
        defense = "polling" if job.protected else "none"
        if isinstance(outcome, Quarantined):
            quarantined += 1
            rows.append(
                (job.codename, defense, outcome.kind, "-", "-", "QUARANTINED")
            )
            continue
        rows.append(
            (
                job.codename,
                defense,
                outcome.attack,
                outcome.faults_observed,
                outcome.crashes,
                "yes" if outcome.succeeded else "no",
            )
        )
    print(render_table(
        ["CPU", "defense", "attack", "faults", "crashes", "succeeded"],
        rows,
        title="Attack campaigns vs the polling countermeasure (Sec. 4.3)",
    ))
    protected_faults = sum(
        outcome.faults_observed
        for job, outcome in zip(jobs, outcomes)
        if job.protected and not isinstance(outcome, Quarantined)
    )
    engine = session.describe()
    print(f"\nprotected-cell faults: {protected_faults} (claim: 0)")
    print(
        f"engine: executor={engine['executor']} workers={engine['workers']} "
        f"cache hits={engine['cache']['hits']} misses={engine['cache']['misses']}"
    )
    if quarantined:
        print(f"WARNING: {quarantined} campaign cell(s) quarantined after "
              "repeated failures; see the run report's quarantine list")
    if args.json:
        cells = []
        for job, outcome in zip(jobs, outcomes):
            cell = {"codename": job.codename, "protected": job.protected}
            if isinstance(outcome, Quarantined):
                cell["quarantined"] = outcome.as_dict()
            else:
                cell.update(
                    attack=outcome.attack,
                    faults_observed=outcome.faults_observed,
                    crashes=outcome.crashes,
                    succeeded=outcome.succeeded,
                )
            cells.append(cell)
        payload = {
            "engine": engine,
            "counters": session.counters(),
            "cells": cells,
        }
        path = write_text(args.json, _json.dumps(payload, indent=2, sort_keys=True))
        print(f"JSON artifact written to {path}")
    if args.report:
        path = session.write_run_report(args.report)
        print(f"run manifest written to {path} (render with: repro report {path})")
    if args.spans_wall and not args.spans:
        print("--spans-wall needs --spans PATH for the main timeline",
              file=sys.stderr)
    elif args.spans:
        from repro.errors import ReproError

        try:
            path = session.export_spans(args.spans, wall_path=args.spans_wall)
            print(f"span timeline written to {path} "
                  "(open in https://ui.perfetto.dev)")
            if args.spans_wall:
                print(f"wall-clock span sidecar (non-deterministic) written "
                      f"to {args.spans_wall}")
        except ReproError as exc:
            print(f"spans not exported: {exc}", file=sys.stderr)
    run_id = session.record_run()
    if run_id:
        print(f"recorded as run {run_id[:12]} "
              f"(inspect: repro runs show {run_id[:12]}; "
              f"re-execute: repro reproduce {run_id[:12]})")
    return 0 if protected_faults == 0 and quarantined == 0 else 1


def _cmd_fuzz(args) -> int:
    import hashlib

    from repro.engine import EngineSession, FuzzJob, executor_from_env, make_executor
    from repro.verify import (
        FuzzSchedule,
        InvariantChecker,
        run_schedule,
        shrink_schedule,
    )

    if args.replay:
        from repro.observe import is_flight_dump, load_flight_dump

        if is_flight_dump(args.replay):
            dump = load_flight_dump(args.replay)
            if dump.schedule is None:
                print(f"flight dump {args.replay} carries no schedule "
                      f"(reason: {dump.reason}); nothing to replay")
                return 2
            schedule = FuzzSchedule.from_dict(dump.schedule)
        else:
            with open(args.replay, "r", encoding="utf-8") as handle:
                schedule = FuzzSchedule.from_json(handle.read())
        summary = run_schedule(schedule)
        print(_json.dumps(summary, indent=2, sort_keys=True))
        if summary["violation"] is not None:
            print(f"\nreplay reproduced: [{summary['violation']['invariant']}] "
                  f"{summary['violation']['message']}")
            return 1
        print("\nreplay ran clean (violation not reproduced)")
        return 0

    models = (
        [model_by_codename(args.cpu)] if args.cpu else list(PAPER_MODEL_TUPLE)
    )
    unsafe_by_model = {}
    for model in models:
        if args.no_module:
            unsafe_by_model[model.codename] = None
        else:
            result = _characterize(model, args.seed)
            unsafe_by_model[model.codename] = _json.dumps(
                result.unsafe_states.to_dict(), sort_keys=True
            )
    jobs = []
    for index, model in enumerate(models):
        count = args.budget // len(models) + (
            1 if index < args.budget % len(models) else 0
        )
        jobs.extend(
            FuzzJob(
                codename=model.codename,
                seed=args.seed,
                case_index=case,
                num_actions=args.actions,
                unsafe_json=unsafe_by_model[model.codename],
            )
            for case in range(count)
        )
    if args.executor is not None or args.workers is not None:
        executor = make_executor(args.executor or "process", workers=args.workers)
    else:
        executor = executor_from_env()
    # Fuzz cases always re-execute (cache=False): the byte-identity
    # guarantee is about recomputation, not about replaying cached runs.
    with EngineSession(executor=executor, verifier=InvariantChecker()) as session:
        summaries = session.run_jobs(jobs, cache=False)
    rows = []
    for model in models:
        cases = [s for s in summaries if s["codename"] == model.codename]
        rows.append(
            (
                model.codename,
                len(cases),
                sum(s["checks"] for s in cases),
                sum(len(s["expected_errors"]) for s in cases),
                sum(s["crashes"] for s in cases),
                sum(1 for s in cases if s["violation"] is not None),
            )
        )
    print(render_table(
        ["CPU", "cases", "checks", "expected errors", "crashes", "violations"],
        rows,
        title=f"Adversarial-schedule fuzzing — seed {args.seed}, "
        f"{args.actions} actions/case",
    ))
    digest = hashlib.sha256(
        _json.dumps(summaries, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    print(f"\nresult digest: {digest}")
    for job, summary in zip(jobs, summaries):
        if summary["violation"] is None:
            continue
        violation = summary["violation"]
        print(f"\nINVARIANT VIOLATION [{violation['invariant']}] "
              f"{violation['message']}")
        print(f"  case: {job.codename} #{job.case_index} "
              f"(action {violation['action_index']})")
        shrunk = shrink_schedule(job.schedule())
        artifact = dict(shrunk.to_dict(), violation=run_schedule(shrunk)["violation"])
        path = write_text(args.out, _json.dumps(artifact, indent=2, sort_keys=True))
        print(f"  shrunk to {len(shrunk.actions)} action(s); "
              f"replayable artifact written to {path}")
        print(f"  replay with: repro fuzz --replay {path}")
        return 1
    print("no invariant violations")
    return 0


def _cmd_chaos(args) -> int:
    import hashlib

    from repro.engine import (
        ChaosPolicy,
        EngineSession,
        FuzzJob,
        ParallelExecutor,
        Quarantined,
        ResultCache,
        RetryPolicy,
    )

    models = (
        [model_by_codename(args.cpu)] if args.cpu else list(PAPER_MODEL_TUPLE)
    )
    jobs = []
    for index, model in enumerate(models):
        count = args.budget // len(models) + (
            1 if index < args.budget % len(models) else 0
        )
        jobs.extend(
            FuzzJob(
                codename=model.codename,
                seed=args.seed,
                case_index=case,
                num_actions=args.actions,
            )
            for case in range(count)
        )
    chaos = None
    if not args.off:
        chaos = ChaosPolicy(
            seed=args.chaos_seed if args.chaos_seed is not None else args.seed,
            kill_rate=args.kill_rate,
            error_rate=args.error_rate,
            stall_rate=args.stall_rate,
            torn_write_rate=args.torn_rate,
            stall_s=args.stall_s,
        )
    # A generous respawn budget: every injected kill costs one pool, and
    # degrading to inline execution would quietly turn chaos off.
    policy = RetryPolicy(
        max_attempts=args.retries,
        timeout_s=args.timeout,
        backoff_s=0.01,
        max_pool_respawns=10,
    )
    executor = ParallelExecutor(args.workers, policy=policy, chaos=chaos)
    cache = (
        ResultCache(directory=args.cache_dir) if args.cache_dir else ResultCache()
    )
    mode = "chaos OFF (clean baseline)" if args.off else "chaos ON"
    print(f"{mode}: {len(jobs)} job(s) across {len(models)} CPU(s), "
          f"retries={policy.max_attempts}, timeout={policy.timeout_s:g}s")
    with EngineSession(executor=executor, cache=cache, chaos=chaos) as session:
        # Two passes: the first executes everything under injection, the
        # second must re-serve every payload — recomputing any result
        # whose cache entry chaos tore — without changing a byte.
        first = session.run_jobs(jobs)
        second = session.run_jobs(jobs)
        supervision = session.executor.stats.as_dict()
        cache_stats = session.cache.stats.as_dict()
    poisoned = sum(
        1 for payload in first + second if isinstance(payload, Quarantined)
    )
    if poisoned:
        print(f"\nERROR: {poisoned} job(s) quarantined — the retry budget "
              f"({args.retries} attempts) must outlast the faulted attempts")
        return 1
    stats_rows = [(name, value) for name, value in sorted(supervision.items())]
    stats_rows += [
        ("cache corrupt entries quarantined", cache_stats["corrupt"]),
        ("cache hits / misses",
         f"{cache_stats['hits']} / {cache_stats['misses']}"),
    ]
    print()
    print(render_table(
        ["supervision", "value"], stats_rows, title="What the chaos did"
    ))
    canonical = _json.dumps(first, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    converged = first == second
    print(f"\nresult digest: {digest}")
    print("second pass byte-identical to first: "
          + ("yes" if converged else "NO — determinism violated"))
    if args.out:
        artifact = {"jobs": len(jobs), "digest": digest, "results": first}
        path = write_text(
            args.out, _json.dumps(artifact, indent=2, sort_keys=True)
        )
        print(f"canonical results written to {path} "
              "(diffable against a --off run)")
    return 0 if converged else 1


def _cmd_spec(args) -> int:
    from repro.bench.runner import SpecOverheadRunner
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    machine = Machine.build(model, seed=_cli_seed(args.seed, "spec", model.codename))
    module = PollingCountermeasure(machine, unsafe)
    machine.modules.insmod(module)
    report = SpecOverheadRunner(machine, module).run()
    rows = [
        (
            row.name,
            f"{row.base_without:.2f}",
            f"{row.base_with:.2f}",
            f"{row.base_slowdown * 100:+.2f}%",
            f"{row.peak_slowdown * 100:+.2f}%",
        )
        for row in report.rows
    ]
    print(render_table(
        ["benchmark", "base w/o", "base with", "base slowdown", "peak slowdown"],
        rows,
        title=f"SPEC2017 polling overhead — {model.codename}",
    ))
    print(f"\nmean base overhead: {report.mean_base_overhead * 100:.2f}% "
          "(paper headline: 0.28%)")
    if args.csv:
        path = write_text(args.csv, overhead_to_csv(report))
        print(f"CSV written to {path}")
    return 0


def _cmd_maximal(args) -> int:
    rows = []
    for codename in PAPER_MODELS:
        model = model_by_codename(codename)
        result = _characterize(model, args.seed)
        rows.append((codename, f"{result.maximal_safe_offset_mv():.0f} mV"))
    print(render_table(["CPU", "maximal safe state"], rows, title="Sec. 5"))
    return 0


def _cmd_trace(args) -> int:
    from repro.analysis.timeline import VoltageTracer
    from repro.telemetry import Telemetry
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    if args.out and not args.export:
        args.export = "chrome"  # --out alone still means "give me a trace file"
    telemetry = Telemetry() if args.export else Telemetry.disabled()
    machine = Machine.build(
        model, seed=_cli_seed(args.seed, "trace", model.codename), telemetry=telemetry
    )
    module = PollingCountermeasure(machine, unsafe)
    machine.modules.insmod(module)
    tracer = VoltageTracer(machine, sample_period_s=100e-6)
    tracer.start()
    machine.write_voltage_offset(args.offset)
    machine.advance(2.5e-3)
    tracer.stop()
    print(tracer.render())
    print(f"\ndeepest offset ever applied: "
          f"{tracer.deepest_applied_offset_mv():.0f} mV "
          f"(attack target was {args.offset} mV)")
    if args.export:
        default_name = "trace.jsonl" if args.export == "jsonl" else "trace.json"
        path = telemetry.export(args.out or default_name, fmt=args.export)
        print(f"{len(telemetry.tracer.events)} telemetry events exported to {path} "
              f"({args.export}" +
              ("; open in https://ui.perfetto.dev)" if args.export == "chrome" else ")"))
    return 0


def _cmd_energy(args) -> int:
    from repro.cpu.power import CorePowerModel

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    power = CorePowerModel(model)
    rows = []
    for frequency in model.frequency_table.frequencies_ghz()[::4]:
        offset = unsafe.safe_offset_mv(frequency)
        savings = power.undervolt_savings(frequency, offset)
        rows.append(
            (
                f"{frequency:.1f}",
                f"{offset:.0f}",
                f"{power.power_at_offset_w(frequency, 0.0):.2f}",
                f"{power.power_at_offset_w(frequency, offset):.2f}",
                f"{savings * 100:.1f}%",
            )
        )
    print(render_table(
        ["freq (GHz)", "safe offset (mV)", "stock W", "undervolted W", "savings"],
        rows,
        title=f"Safe-band undervolting savings — {model.codename}",
    ))
    return 0


def _cmd_verify(args) -> int:
    from repro.core.verification import verify_deployment
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    machine = Machine.build(model, seed=_cli_seed(args.seed, "verify", model.codename))
    machine.modules.insmod(PollingCountermeasure(machine, unsafe))
    report = verify_deployment(machine, unsafe, samples=args.samples)
    print(render_table(
        ["freq (GHz)", "offset (mV)", "faults", "crashed", "detected"],
        [
            (f"{p.frequency_ghz:.1f}", p.offset_mv, p.faults, p.crashed, p.detected)
            for p in report.probes
        ],
        title="Deployment verification probes",
    ))
    print(f"\n{report.summary()}")
    return 0 if report.passed else 1


def _open_registry(directory=None, *, required: bool = True):
    """The registry named by ``--registry``/the environment, or ``None``."""
    from repro.registry import RunRegistry

    if directory:
        return RunRegistry(directory)
    registry = RunRegistry.from_env()
    if registry is None and required:
        print(
            "run registry disabled (REPRO_REGISTRY=0); pass --registry DIR "
            "or unset REPRO_REGISTRY",
            file=sys.stderr,
        )
    return registry


def _cmd_runs(args) -> int:
    registry = _open_registry(args.registry)
    if registry is None:
        return 2
    if args.runs_command == "list":
        rows = registry.runs(
            codename=args.cpu,
            status=args.status,
            since=args.since,
            fingerprint=args.spec,
            limit=args.limit,
        )
        if args.porcelain:
            for row in rows:
                print(row["run_id"])
            return 0
        if not rows:
            print(f"no recorded runs in {registry.directory}")
            return 0
        print(render_table(
            ["run id", "recorded (UTC)", "status", "jobs", "executed",
             "cached", "CPUs"],
            [
                (
                    row["run_id"][:12],
                    row["created_at"],
                    row["status"],
                    row["jobs_total"],
                    row["jobs_executed"],
                    row["jobs_cached"] + row["jobs_resumed"],
                    ", ".join(row["codenames"]) or "-",
                )
                for row in rows
            ],
            title=f"Recorded runs — {registry.directory}",
        ))
        return 0

    run = registry.get_run(args.run_id)
    code = run["code"]
    describe = code.get("describe") or "unknown checkout"
    print(f"run {run['run_id']}")
    print(f"  recorded:  {run['created_at']} (status: {run['status']}, "
          f"manifest schema {run['schema']})")
    print(f"  code:      repro {code.get('version', '?')} ({describe})")
    env = run["env"]
    rendered_env = ", ".join(
        f"{name}={value or '<unset>'}" for name, value in sorted(env.items())
    )
    print(f"  env:       {rendered_env or '-'}")
    print(f"  jobs:      {run['jobs_total']} total — "
          f"{run['jobs_executed']} executed, {run['jobs_cached']} cached, "
          f"{run['jobs_resumed']} resumed, "
          f"{run['jobs_quarantined']} quarantined")
    print(f"  CPUs:      {', '.join(run['codenames']) or '-'}")
    print(f"  manifest:  object {run['manifest_sha'][:12]}")
    results = registry.results_for(run["run_id"])
    if results:
        print()
        print(render_table(
            ["kind", "seed path", "fingerprint", "source", "payload"],
            [
                (
                    row["kind"],
                    "/".join(str(p) for p in row["seed_path"]),
                    row["fingerprint"][:12],
                    row["source"],
                    (row["payload_sha"] or "")[:12] or "-",
                )
                for row in results
            ],
        ))
    flights = registry.flights_for(run["run_id"])
    if flights:
        print("\nflight dumps:")
        for flight in flights:
            print(f"  {flight['path']}  sha256={flight['sha256'][:12]} "
                  f"({flight['reason']})")
        print("replay one with: repro observe replay "
              f"{run['run_id'][:12]}")
    return 0


def _cmd_diff(args) -> int:
    from repro.registry import diff_runs

    registry = _open_registry(args.registry)
    if registry is None:
        return 2
    diff = diff_runs(registry, args.run_a, args.run_b)
    if args.json:
        print(_json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.identical else 1


def _cmd_spans(args) -> int:
    from repro.observe import FleetTimeline

    registry = _open_registry(args.registry)
    if registry is None:
        return 2
    run_id = registry.resolve(args.run_id)
    document = registry.spans_for(run_id)
    if document is None:
        print(f"run {run_id[:12]} has no recorded span timeline "
              "(recorded before spans existed, or with REPRO_SPANS=0)",
              file=sys.stderr)
        return 2
    timeline = FleetTimeline.from_dict(document)
    if args.json:
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0
    if args.export:
        from repro.telemetry.export import write_trace

        path = write_trace(args.export, timeline.to_events(), fmt=args.fmt)
        print(f"span timeline for run {run_id[:12]} written to {path}"
              + (" (open in https://ui.perfetto.dev)"
                 if args.fmt == "chrome" else ""))
        if args.wall:
            write_trace(args.wall, timeline.wall_events(), fmt=args.fmt)
            print(f"wall-clock sidecar (non-deterministic) written to "
                  f"{args.wall}")
        return 0
    print(f"run {run_id[:12]}")
    print(timeline.render())
    return 0


def _cmd_top(args) -> int:
    from repro.observe import run_top
    from repro.observe.top import DEFAULT_INTERVAL_S

    url = args.url or f"http://127.0.0.1:{args.port}/metrics"
    # A bare coordinator URL (repro serve prints one) works too: the
    # dashboard scrapes its /metrics exposition.
    if "://" in url and not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    return run_top(
        url,
        once=args.once,
        interval_s=(
            args.interval if args.interval is not None else DEFAULT_INTERVAL_S
        ),
        frames=args.frames,
    )


def _trajectory_value(args) -> float:
    from repro.registry import extract_metric

    if (args.value is None) == (args.artifact is None):
        raise SystemExit(
            "trajectory: pass exactly one of --value or --from JSON"
        )
    if args.value is not None:
        return float(args.value)
    return extract_metric(args.artifact, args.metric)


def _default_baseline(bench: str) -> str:
    from repro.registry import trajectory_filename

    return str(
        Path("benchmarks") / "trajectories" / trajectory_filename(bench)
    )


def _cmd_trajectory(args) -> int:
    from repro.registry import (
        DEFAULT_MAX_REGRESS,
        check_point,
        load_trajectory,
        make_point,
        record_point,
        trajectory_filename,
    )

    if args.trajectory_command == "list":
        registry = _open_registry(args.registry)
        if registry is None:
            return 2
        benches = registry.trajectory_benches()
        if not benches:
            print(f"no recorded trajectories in {registry.directory}")
            return 0
        rows = []
        for bench in benches:
            points = registry.trajectory(bench)
            latest = points[-1]
            rows.append(
                (
                    bench,
                    len(points),
                    latest.get("metric", "?"),
                    f"{latest.get('value', 0.0):.6g} {latest.get('unit', '')}",
                )
            )
        print(render_table(
            ["bench", "points", "metric", "latest"],
            rows,
            title=f"Perf trajectories — {registry.directory}",
        ))
        return 0

    value = _trajectory_value(args)
    if args.trajectory_command == "record":
        point = make_point(
            args.bench,
            args.metric,
            value,
            unit=args.unit,
            lower_is_better=not args.higher_better,
            run_id=args.run,
        )
        registry = None
        if not args.no_registry:
            registry = _open_registry(args.registry, required=False)
        record_point(point, registry=registry, file=args.file)
        where = []
        if registry is not None:
            where.append(f"registry {registry.directory}")
        if args.file:
            where.append(str(args.file))
        print(f"recorded {args.bench}/{args.metric} = {value:.6g} "
              f"→ {', '.join(where) or 'nowhere (no registry, no --file)'}")
        return 0

    baseline_path = args.baseline or _default_baseline(args.bench)
    baseline = load_trajectory(baseline_path)
    if not baseline:
        print(f"baseline trajectory {baseline_path} is missing or empty; "
              f"seed it with: repro trajectory record {args.bench} "
              f"--value … --file {baseline_path}", file=sys.stderr)
        return 2
    metric = args.metric
    if metric == "value" and not any(
        point.get("metric") == "value" for point in baseline
    ):
        # Bare --value checks inherit the baseline's metric when it is
        # unambiguous, so `trajectory check BENCH --value X` just works.
        metrics = {point.get("metric") for point in baseline}
        if len(metrics) == 1:
            metric = metrics.pop()
    candidate = make_point(
        args.bench,
        metric,
        value,
        lower_is_better=not args.higher_better,
    )
    max_regress = (
        args.max_regress if args.max_regress is not None else DEFAULT_MAX_REGRESS
    )
    check = check_point(baseline, candidate, max_regress=max_regress)
    print(check.render())
    return 0 if check.ok else 1


def _cmd_reproduce(args) -> int:
    from repro import experiments
    from repro.cpu import COMET_LAKE, KABY_LAKE_R, SKY_LAKE

    if args.run_id is not None:
        from repro.registry import reproduce_run

        registry = _open_registry(args.registry)
        if registry is None:
            return 2
        report = reproduce_run(registry, args.run_id)
        print(report.render())
        if args.json:
            path = write_text(
                args.json, _json.dumps(report.as_dict(), indent=2, sort_keys=True)
            )
            print(f"reproduction report written to {path}")
        return 0 if report.ok else 1
    if args.experiment is None:
        raise SystemExit(
            "reproduce: pass a registry RUN_ID or --experiment NAME"
        )

    if args.experiment in ("fig2", "fig3", "fig4"):
        model = {"fig2": SKY_LAKE, "fig3": KABY_LAKE_R, "fig4": COMET_LAKE}[
            args.experiment
        ]
        result = experiments.characterization(model, seed=args.seed)
        text = (
            render_characterization_map(result)
            + "\n\n"
            + render_boundary_series(result)
        )
    elif args.experiment == "table2":
        report = experiments.table2_overhead()
        text = render_table(
            ["benchmark", "base slowdown", "peak slowdown"],
            [
                (r.name, f"{r.base_slowdown * 100:+.2f}%", f"{r.peak_slowdown * 100:+.2f}%")
                for r in report.rows
            ],
            title=f"Table 2 — mean base overhead {report.mean_base_overhead * 100:.2f}%",
        )
    elif args.experiment == "prevention":
        matrix = experiments.prevention_matrix()
        text = render_table(
            ["CPU", "defense", "attack", "faults", "succeeded"],
            [
                (
                    c.codename,
                    "polling" if c.protected else "none",
                    c.outcome.attack,
                    c.outcome.faults_observed,
                    "yes" if c.outcome.succeeded else "no",
                )
                for c in matrix.cells
            ],
            title="Prevention matrix (Sec. 4.3)",
        )
    else:
        deployments = experiments.maximal_safe_deployments()
        text = render_table(
            ["deployment", "window faults", "writes blocked"],
            [
                (d.deployment, d.outcome.faults_observed, d.outcome.writes_blocked)
                for d in deployments
            ],
            title="Adaptive attack vs deployment depth (Sec. 5)",
        )
    print(text)
    if args.out:
        path = write_text(args.out, text)
        print(f"\nartifact written to {path}")
    return 0


def _cmd_status(args) -> int:
    if args.registry is not None:
        registry = _open_registry(
            None if args.registry == "auto" else args.registry
        )
        if registry is None:
            return 2
        info = registry.describe()
        jobs = info["jobs"]
        rows = [
            ("directory", info["directory"]),
            ("recorded runs", info["runs"]),
            ("jobs", f"{jobs['total']} ({jobs['executed']} executed, "
                     f"{jobs['cached']} cached, {jobs['resumed']} resumed, "
                     f"{jobs['quarantined']} quarantined)"),
            ("dedup hit-rate", f"{info['dedup_hit_rate']:.0%}"),
            ("dedup by origin",
             f"{info['dedup_hits']['local']} local / "
             f"{info['dedup_hits']['remote']} remote"),
            ("objects", info["objects"]),
            ("store size", f"{info['store_bytes'] / 1024:.1f} KiB"),
            ("flight dumps", info["flights"]),
        ]
        for bench, point in sorted(info["trajectories"].items()):
            rows.append(
                (f"trajectory {bench}",
                 f"{point.get('metric', '?')} = {point.get('value', 0.0):.6g} "
                 f"{point.get('unit', '')}")
            )
        print(render_table(
            ["registry", "value"], rows, title="Run registry status"
        ))
        # Supervision latency from the latest run's recorded span
        # timeline: queue-wait and execute-time percentiles per job kind
        # (wall clock, so populated for process runs; serial runs show
        # execute time with ~zero queue wait), plus the failed-attempt
        # and abandonment counts the spans carry.
        latest = registry.runs(limit=1)
        if latest:
            from repro.observe import FleetTimeline

            run = latest[0]
            document = registry.spans_for(run["run_id"])
            if document is not None:
                timeline = FleetTimeline.from_dict(document)
                latency = timeline.latency()
                attempts = timeline.attempts_by_kind()
                kinds = sorted(set(latency) | set(attempts))
                table = []
                for kind in kinds:
                    stats = latency.get(kind, {})
                    queue = stats.get("queue_wait_s", {})
                    execute = stats.get("exec_s", {})
                    counts = attempts.get(kind, {})
                    table.append(
                        (
                            kind,
                            stats.get("jobs", 0),
                            f"{queue.get('p50', 0.0):.3f}",
                            f"{queue.get('p95', 0.0):.3f}",
                            f"{execute.get('p50', 0.0):.3f}",
                            f"{execute.get('p95', 0.0):.3f}",
                            counts.get("retried", 0),
                            counts.get("abandoned", 0),
                        )
                    )
                if table:
                    print()
                    print(render_table(
                        ["job kind", "jobs", "queue p50 s", "queue p95 s",
                         "exec p50 s", "exec p95 s", "retried", "abandoned"],
                        table,
                        title=f"Supervision latency — run "
                        f"{run['run_id'][:12]} (wall clock, "
                        f"non-deterministic; "
                        f"{run['jobs_quarantined']} quarantined)",
                    ))
        return 0

    from repro.kernel import render_system_status
    from repro.telemetry import Telemetry
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    machine = Machine.build(
        model, seed=_cli_seed(args.seed, "status", model.codename), telemetry=Telemetry()
    )
    machine.modules.insmod(PollingCountermeasure(machine, unsafe))
    machine.advance(5e-3)
    print(render_system_status(machine))
    print("\ntelemetry counters\n------------------")
    print(machine.telemetry.render_metrics())
    return 0


def _cmd_profile(args) -> int:
    from repro.attacks import ImulCampaign
    from repro.observe import SimProfiler
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    machine = Machine.build(
        model, seed=_cli_seed(args.seed, "profile", model.codename)
    )
    machine.modules.insmod(PollingCountermeasure(machine, unsafe))
    profiler = SimProfiler().install(machine)
    campaign = ImulCampaign(
        machine,
        frequency_ghz=model.frequency_table.base_ghz,
        offsets_mv=tuple(range(-60, -301, -10)),
        iterations_per_point=args.iterations,
    )
    outcome = campaign.mount()
    profiler.uninstall()
    rows = [
        (
            bucket.component,
            bucket.site,
            bucket.events,
            f"{bucket.sim_time_s * 1e3:.3f}",
        )
        for bucket in profiler.buckets()
    ]
    print(render_table(
        ["component", "site", "events", "sim ms"],
        rows,
        title=f"Dispatch-loop profile — {model.codename}, protected imul "
        f"campaign ({profiler.total_events} events, "
        f"attack {'succeeded' if outcome.succeeded else 'defeated'})",
    ))
    path = profiler.write_speedscope(args.out)
    print(f"\nspeedscope profile written to {path} "
          "(open in https://www.speedscope.app)")
    if args.collapsed:
        path = profiler.write_collapsed(args.collapsed)
        print(f"collapsed stacks written to {path}")
    if args.wall:
        path = write_text(
            args.wall, _json.dumps(profiler.wall_snapshot(), indent=2, sort_keys=True)
        )
        print(f"wall-clock sidecar (non-deterministic) written to {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.observe import load_manifest, render_markdown, write_markdown

    manifest = load_manifest(args.path)
    if args.md:
        path = write_markdown(manifest, args.md)
        print(f"Markdown report written to {path}")
    else:
        print(render_markdown(manifest), end="")
    return 0


def _cmd_metrics_serve(args) -> int:
    import time

    from repro.observe import MetricsServer
    from repro.telemetry import Telemetry
    from repro.testbench import Machine

    model = model_by_codename(args.cpu)
    unsafe = _characterize(model, args.seed).unsafe_states
    telemetry = Telemetry()
    machine = Machine.build(
        model,
        seed=_cli_seed(args.seed, "metrics", model.codename),
        telemetry=telemetry,
    )
    machine.modules.insmod(PollingCountermeasure(machine, unsafe))
    from repro.errors import ObserveError

    try:
        server = MetricsServer(
            telemetry.registry, host=args.host, port=args.port
        ).start()
    except ObserveError as exc:
        print(f"metrics serve: {exc}", file=sys.stderr)
        return 2
    try:
        print(f"serving OpenMetrics at {server.url} "
              f"(liveness at /healthz) for {args.duration:g}s", flush=True)
        deadline = time.monotonic() + args.duration
        try:
            while time.monotonic() < deadline:
                # Keep the countermeasure polling so scrapes see live
                # counters; sim time needs no relation to wall time.
                machine.advance(5e-3)
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
    finally:
        server.stop()
    print("metrics server stopped")
    return 0


def _cmd_serve(args) -> int:
    import tempfile
    import time

    from repro.errors import ObserveError, ServeError
    from repro.serve import Coordinator
    from repro.serve.coordinator import DEFAULT_LEASE_TIMEOUT_S

    store = args.store or tempfile.mkdtemp(prefix="repro-serve-")
    coordinator = Coordinator(
        store,
        host=args.host,
        port=args.port,
        lease_timeout_s=(
            args.lease_timeout
            if args.lease_timeout is not None
            else DEFAULT_LEASE_TIMEOUT_S
        ),
    )
    try:
        coordinator.start()
    except (ObserveError, ServeError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    # coordinator.port, not args.port: --port 0 binds an ephemeral port
    # and this line is how workers and clients learn the address.
    print(f"coordinator serving at {coordinator.url} "
          f"(store: {store}; metrics at {coordinator.url}/metrics)",
          flush=True)
    print(f"attach workers with: repro work --coordinator {coordinator.url}",
          flush=True)
    deadline = (
        time.monotonic() + args.duration if args.duration is not None else None
    )
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    print("coordinator stopped")
    return 0


def _cmd_work(args) -> int:
    from repro.errors import CoordinatorUnreachableError, ServeError
    from repro.serve import WorkerAgent
    from repro.serve.worker import DEFAULT_CAPACITY

    agent = WorkerAgent(
        args.coordinator,
        worker_id=args.worker_id,
        capacity=args.capacity if args.capacity is not None else DEFAULT_CAPACITY,
        max_idle_s=args.max_idle,
    )
    print(f"worker {agent.worker_id} polling {args.coordinator}", flush=True)
    try:
        executed = agent.run()
    except KeyboardInterrupt:
        executed = agent.executed
    except (CoordinatorUnreachableError, ServeError) as exc:
        print(f"work: {exc}", file=sys.stderr)
        return 2
    print(f"worker {agent.worker_id} done ({executed} job(s) executed)")
    return 0


def _cmd_observe_replay(args) -> int:
    from repro.observe import load_flight_dump
    from repro.verify import FuzzSchedule, run_schedule

    path = args.path
    if not Path(path).exists():
        # Not a file — maybe a registry run id whose dumps were recorded.
        registry = _open_registry(args.registry, required=False)
        flights = []
        if registry is not None:
            try:
                run_id = registry.resolve(path)
                flights = registry.flights_for(run_id)
            except Exception:
                flights = []
        if not flights:
            print(f"{args.path}: neither a flight dump file nor a "
                  "recorded run with flight dumps", file=sys.stderr)
            return 2
        print(f"run {run_id[:12]}: {len(flights)} recorded flight dump(s)")
        for flight in flights:
            print(f"  {flight['path']}  sha256={flight['sha256'][:12]} "
                  f"({flight['reason']})")
        available = [f for f in flights if Path(f["path"]).exists()]
        if not available:
            print("none of the recorded dump files still exist on disk",
                  file=sys.stderr)
            return 2
        path = available[0]["path"]
        print(f"replaying {path}\n")

    dump = load_flight_dump(path)
    header = dump.header
    print(f"flight dump: reason={dump.reason} "
          f"sim_time={header.get('sim_time_s', 0.0):g}s "
          f"events={len(dump.events)}")
    machine = header.get("machine")
    if machine:
        print(f"machine: {machine.get('codename')} seed={machine.get('seed')} "
              f"spec={str(machine.get('sha256', ''))[:12]}")
    if header.get("violation"):
        violation = header["violation"]
        print(f"recorded violation: [{violation['invariant']}] "
              f"{violation['message']}")
    if dump.schedule is None:
        print("dump carries no schedule; nothing to replay "
              "(inspect the trace tail with repro.observe.load_flight_dump)")
        return 2
    schedule = FuzzSchedule.from_dict(dump.schedule)
    summary = run_schedule(schedule)
    print(_json.dumps(summary, indent=2, sort_keys=True))
    if summary["violation"] is not None:
        print(f"\nreplay reproduced: [{summary['violation']['invariant']}] "
              f"{summary['violation']['message']}")
        return 1
    print("\nreplay ran clean (violation not reproduced)")
    return 0


def _configure_logging(level_name: Optional[str]) -> None:
    """Apply the ``--log-level`` flag to the ``repro`` logger tree."""
    if level_name is None:
        return
    level = getattr(logging, level_name.upper())
    logging.basicConfig(level=level)
    logging.getLogger("repro").setLevel(level)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _configure_logging(args.log_level)
    if args.command == "list-cpus":
        return _cmd_list_cpus()
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "spec":
        return _cmd_spec(args)
    if args.command == "maximal":
        return _cmd_maximal(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "energy":
        return _cmd_energy(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command in ("reproduce", "runs", "diff", "trajectory", "spans"):
        # Registry verbs fail with a one-line message, not a traceback:
        # a missing run id or empty baseline is a usage error, not a bug.
        from repro.errors import RegistryError

        handler = {
            "reproduce": _cmd_reproduce,
            "runs": _cmd_runs,
            "diff": _cmd_diff,
            "trajectory": _cmd_trajectory,
            "spans": _cmd_spans,
        }[args.command]
        try:
            return handler(args)
        except RegistryError as exc:
            print(f"repro {args.command}: {exc}", file=sys.stderr)
            return 2
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "work":
        return _cmd_work(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "metrics":
        return _cmd_metrics_serve(args)
    if args.command == "observe":
        return _cmd_observe_replay(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
