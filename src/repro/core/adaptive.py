"""Adaptive characterization: a fast variant of Algorithm 2.

The paper's sweep probes every 1 mV cell of every frequency — thorough,
but on real hardware each cell costs a regulator settle plus a million
``imul`` iterations, so a full grid takes hours and crashes the machine
once per frequency.  Because the unsafe region is downward-closed in
voltage (observation O3: lowering the voltage only inflates the
violation), the per-frequency fault boundary can be found by **bisection**
with confirmation repeats, cutting the probe count by more than an order
of magnitude while keeping the derived unsafe set conservative.

This is an extension beyond the paper (its "future work" flavour of
reducing characterization turnaround); the ablation benchmark
``test_bench_ablation_characterization_cost`` quantifies the trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, MachineCheckError
from repro.core.characterization import CharacterizationResult, CharacterizationConfig
from repro.core.unsafe_states import UnsafeStateSet
from repro.cpu.models import CPUModel
from repro.faults.imul import ImulLoop
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel

if TYPE_CHECKING:
    from repro.testbench import Machine


@dataclass(frozen=True)
class AdaptiveConfig:
    """Bisection parameters."""

    #: Shallow end of the bracket (must be safe on any sane part).
    start_mv: int = -1
    #: Deep end of the bracket.
    stop_mv: int = -300
    #: Stop refining once the bracket is this tight.
    resolution_mv: int = 1
    #: EXECUTE-thread iterations per probe.
    iterations: int = 1_000_000
    #: Confirmation repeats at each probed cell: a cell counts as safe
    #: only if *every* repeat is fault-free (guards against the ~e^-1
    #: chance of sampling zero faults right at the onset).
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.start_mv >= 0 or self.stop_mv >= self.start_mv:
            raise ConfigurationError("need start_mv < 0 and stop_mv < start_mv")
        if self.resolution_mv <= 0 or self.iterations <= 0 or self.repeats <= 0:
            raise ConfigurationError("resolution, iterations and repeats must be positive")


@dataclass
class AdaptiveOutcome:
    """Result of an adaptive characterization."""

    result: CharacterizationResult
    probes: int = 0
    crashes: int = 0
    boundaries: List[tuple] = field(default_factory=list)


class AdaptiveCharacterization:
    """Bisection-based safe/unsafe boundary discovery."""

    def __init__(
        self,
        model: CPUModel,
        *,
        config: Optional[AdaptiveConfig] = None,
        seed: int = 2024,
    ) -> None:
        self.model = model
        self.config = config or AdaptiveConfig()
        self.seed = seed

    def run(self) -> AdaptiveOutcome:
        """Find each frequency's boundary by bisection with repeats."""
        config = self.config
        fault_model = FaultModel(self.model)
        injector = FaultInjector(fault_model, np.random.default_rng(self.seed))
        loop = ImulLoop(config.iterations)
        unsafe = UnsafeStateSet(system=self.model.codename)
        sweep_config = CharacterizationConfig(
            offset_start_mv=config.start_mv,
            offset_stop_mv=config.stop_mv,
            iterations=config.iterations,
        )
        result = CharacterizationResult(
            model=self.model, config=sweep_config, unsafe_states=unsafe
        )
        outcome = AdaptiveOutcome(result=result)

        def probe(frequency: float, offset: int) -> str:
            conditions = fault_model.conditions_for_offset(frequency, offset)
            for _ in range(self.config.repeats):
                outcome.probes += 1
                try:
                    report = loop.run(injector, conditions)
                except MachineCheckError:
                    self._record(outcome, frequency, offset, 0, crashed=True)
                    return "crash"
                if report.fault_count > 0:
                    self._record(
                        outcome, frequency, offset, report.fault_count, crashed=False
                    )
                    return "fault"
            self._record(outcome, frequency, offset, 0, crashed=False, safe=True)
            return "safe"

        self._sweep(probe, outcome)
        return outcome

    def run_on_machine(self, machine: "Machine", *, core_index: int = 0) -> AdaptiveOutcome:
        """Event-mode bisection: probe through a live machine's interfaces.

        Each probe pins the frequency via cpupower, writes the offset via
        MSR 0x150, waits out the regulator and runs the EXECUTE window —
        the procedure a deployed characterization robot would follow.
        Crashes reboot the machine and count as unsafe.
        """
        config = self.config
        unsafe = UnsafeStateSet(system=self.model.codename)
        sweep_config = CharacterizationConfig(
            offset_start_mv=config.start_mv,
            offset_stop_mv=config.stop_mv,
            iterations=config.iterations,
        )
        result = CharacterizationResult(
            model=self.model, config=sweep_config, unsafe_states=unsafe
        )
        outcome = AdaptiveOutcome(result=result)
        settle = self.model.regulator_latency_s * 1.2

        def probe(frequency: float, offset: int) -> str:
            machine.cpupower.frequency_set(frequency, core_index=core_index)
            machine.write_voltage_offset(offset, core_index)
            machine.advance(settle)
            for _ in range(self.config.repeats):
                outcome.probes += 1
                try:
                    report = machine.run_imul_window(
                        core_index, iterations=self.config.iterations
                    )
                except MachineCheckError:
                    self._record(outcome, frequency, offset, 0, crashed=True)
                    machine.reboot(settle_s=settle)
                    machine.cpupower.frequency_set(frequency, core_index=core_index)
                    return "crash"
                if report.fault_count > 0:
                    self._record(
                        outcome, frequency, offset, report.fault_count, crashed=False
                    )
                    break
            else:
                self._record(outcome, frequency, offset, 0, crashed=False, safe=True)
                machine.write_voltage_offset(0, core_index)
                machine.advance(settle)
                return "safe"
            machine.write_voltage_offset(0, core_index)
            machine.advance(settle)
            return "fault"

        self._sweep(probe, outcome)
        machine.write_voltage_offset(0, core_index)
        machine.advance(settle)
        return outcome

    # -- internals ---------------------------------------------------------------

    def _record(
        self, outcome, frequency, offset, fault_count, *, crashed, safe=False
    ) -> None:
        from repro.core.unsafe_states import CellResult

        if crashed:
            outcome.crashes += 1
            outcome.result.crashes += 1
            outcome.result.unsafe_states.add_crash(frequency, offset)
        elif not safe:
            outcome.result.unsafe_states.add_unsafe(frequency, offset)
        outcome.result.cells.append(
            CellResult(frequency, offset, fault_count, crashed=crashed)
        )

    def _sweep(self, probe, outcome) -> None:
        """Warm-started per-frequency bisection over the whole table."""
        previous_boundary: Optional[int] = None
        for frequency in self.model.frequency_table.frequencies_ghz():
            verdict = self._bisect_frequency(
                frequency, probe, outcome, previous_boundary
            )
            if verdict is not None:
                outcome.boundaries.append((frequency, verdict))
                previous_boundary = verdict

    def _bisect_frequency(
        self,
        frequency,
        probe_fn,
        outcome,
        previous_boundary: Optional[int] = None,
    ) -> Optional[int]:
        """Bisect for the shallowest faulting offset at one frequency.

        With a ``previous_boundary`` (the neighbouring frequency's result)
        the bracket warm-starts around it: boundaries move only a few mV
        per 0.1 GHz, so the deep probe lands in the *fault band* instead
        of the crash region — the trick that makes the adaptive variant
        cheap in reboots, not just in probes.
        """
        config = self.config
        probe = lambda offset: probe_fn(frequency, offset)  # noqa: E731
        if previous_boundary is None:
            shallow = config.start_mv
            deep = config.stop_mv
            if probe(deep) == "safe":
                return None  # nothing unsafe in range at this frequency
        else:
            shallow = min(config.start_mv, previous_boundary + 40)
            deep = max(config.stop_mv, previous_boundary - 15)
            # Grow the deep end until it is confirmed unsafe.
            while probe(deep) == "safe":
                if deep <= config.stop_mv:
                    return None
                shallow = deep
                deep = max(config.stop_mv, deep - 25)
            # Grow the shallow end until it is confirmed safe.
            while shallow < config.start_mv and probe(shallow) != "safe":
                deep = shallow
                shallow = min(config.start_mv, shallow + 40)
        while shallow - deep > config.resolution_mv:
            middle = (shallow + deep) // 2
            if probe(middle) == "safe":
                shallow = middle
            else:
                deep = middle
        # `deep` is the shallowest offset confirmed unsafe.
        return deep
