"""Safe-state restoration policies.

When Algo 3 finds a core in an unsafe state it must "write to 0x150 to
force the system into safe state".  *Which* safe value to write is a
policy decision the paper leaves open; we implement the three natural
choices and make them pluggable so the ablation benchmarks can compare
them:

* :class:`RestoreToZero` — drop the offset entirely (most conservative,
  denies benign undervolting while an attack is in progress);
* :class:`ClampToBoundary` — restore to the deepest *safe* offset for the
  core's current frequency (maximally preserves benign undervolting,
  which is the availability property the paper emphasises);
* :class:`ClampToMaximalSafe` — restore to the maximal safe state of
  Sec. 5, the frequency-independent value deployable in microcode or as
  an MSR clamp.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.encoding import CoreStatus
from repro.core.unsafe_states import DEFAULT_SAFETY_MARGIN_MV, UnsafeStateSet


class SafeStatePolicy(ABC):
    """Chooses the offset Algo 3 writes when remediating a core."""

    #: Policy name used in reports.
    name: str = "policy"

    @abstractmethod
    def safe_offset_mv(self, unsafe_states: UnsafeStateSet, status: CoreStatus) -> float:
        """The offset (mV, <= 0) to force the core back to."""


@dataclass
class RestoreToZero(SafeStatePolicy):
    """Reset the voltage offset to 0 mV (factory curve)."""

    name: str = "restore-to-zero"

    def safe_offset_mv(self, unsafe_states: UnsafeStateSet, status: CoreStatus) -> float:
        """Always restore the factory voltage (offset 0)."""
        return 0.0


@dataclass
class ClampToBoundary(SafeStatePolicy):
    """Clamp to the deepest safe offset for the current frequency.

    Keeps benign undervolting alive at full depth: a power-conscious
    process undervolting within the safe band is untouched, and even a
    remediated core retains as much undervolt as is safely possible.
    """

    margin_mv: float = DEFAULT_SAFETY_MARGIN_MV
    name: str = "clamp-to-boundary"

    def safe_offset_mv(self, unsafe_states: UnsafeStateSet, status: CoreStatus) -> float:
        """Deepest safe offset for the core's current frequency."""
        return unsafe_states.safe_offset_mv(status.frequency_ghz, margin_mv=self.margin_mv)


@dataclass
class ClampToMaximalSafe(SafeStatePolicy):
    """Clamp to the maximal safe state (Sec. 5).

    Frequency-independent, so the same constant works for every core at
    every P-state — the property that lets the countermeasure migrate
    into microcode (Sec. 5.1) or a hardware MSR (Sec. 5.2).
    """

    margin_mv: float = DEFAULT_SAFETY_MARGIN_MV
    name: str = "clamp-to-maximal-safe"

    def safe_offset_mv(self, unsafe_states: UnsafeStateSet, status: CoreStatus) -> float:
        """The frequency-independent maximal safe state."""
        return unsafe_states.maximal_safe_offset_mv(margin_mv=self.margin_mv)
