"""Algorithm 3: the polling countermeasure kernel module.

The deployed module polls, for each CPU core, MSR 0x198 (current
frequency/voltage) and MSR 0x150 (current voltage offset); if the observed
(frequency, offset) pair lies in the characterized unsafe set, it writes a
safe offset back to 0x150, forcing the system into a safe state
(Sec. 4.3).

Faithfulness notes:

* every MSR access goes through the kernel MSR driver and is charged its
  ioctl latency — contributor (1) to the turnaround time of Sec. 5;
* the remediation write lands in the voltage regulator and only becomes
  electrically effective after the settle latency — contributor (2);
* reading the current offset follows the full overclocking-mailbox
  protocol (read-request command, then ``rdmsr``), costing two driver
  calls, unless ``fast_offset_read`` is set.

The module's *load state* is what the paper proposes adding to SGX
attestation reports; :class:`~repro.kernel.module.ModuleRegistry` plus
:mod:`repro.sgx.attestation` close that loop.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.core.encoding import CoreStatus, decode_core_status, offset_voltage, read_request
from repro.core.policy import ClampToBoundary, SafeStatePolicy
from repro.core.unsafe_states import UnsafeStateSet
from repro.cpu.msr import IA32_PERF_STATUS, MSR_OC_MAILBOX
from repro.cpu.ocm import VoltagePlane
from repro.kernel.module import KernelModule
from repro.kernel.sim import RecurringEvent
from repro.telemetry import Registry
from repro.testbench import Machine

#: Default polling period: 500 us.  The period must undercut the voltage
#: regulator's apply delay (~650 us) so an unsafe *target* written to
#: MSR 0x150 is detected and rewritten before it ever becomes electrically
#: effective; at the same time the period bounds the module's CPU theft to
#: the sub-percent figure of Table 2.
DEFAULT_PERIOD_S = 500e-6

#: Telemetry histogram recording, per remediation, the detection-to-settled
#: latency: the ioctl chain plus the regulator raise latency (the Sec. 5
#: turnaround decomposition, minus the polling quantum).
TURNAROUND_HISTOGRAM = "countermeasure.turnaround_s"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RemediationEvent:
    """One unsafe-state detection and the corrective write."""

    time_s: float
    core_index: int
    observed: CoreStatus
    restored_offset_mv: float


class PollingStats:
    """Counters for one module lifetime, backed by telemetry.

    The polls / core-checks / detections tallies live in
    :class:`~repro.telemetry.Registry` counters
    (``countermeasure.polls`` ...), so ``repro status`` dumps and test
    assertions read one source of truth.  When the owning machine's
    telemetry is disabled, the stats fall back to a private registry so
    the counts remain exact either way.  The original attribute API
    (``stats.polls`` etc.) is preserved as read-only properties.
    """

    def __init__(self, registry: Optional[Registry] = None) -> None:
        if registry is None or not registry.enabled:
            registry = Registry()
        self.registry = registry
        self._polls = registry.counter("countermeasure.polls")
        self._core_checks = registry.counter("countermeasure.core_checks")
        self._detections = registry.counter("countermeasure.detections")
        self.remediations: List[RemediationEvent] = []
        # The registry counters are shared across module lifetimes (that
        # sharing is the telemetry contract), so per-lifetime reporting
        # subtracts a baseline snapshotted at construction and re-taken
        # on every (re)load — without it a reloaded module starts its
        # life claiming the previous lifetime's polls and detections.
        self._polls_base = self._polls.value
        self._core_checks_base = self._core_checks.value
        self._detections_base = self._detections.value
        self._frozen: Optional[tuple] = None

    def begin_lifetime(self) -> None:
        """Re-baseline the shared counters at a module (re)load.

        The registry totals keep accumulating (``repro status`` sees the
        machine-wide truth); the ``polls``/``core_checks``/``detections``
        properties and the remediation log report this lifetime only.
        """
        self._polls_base = self._polls.value
        self._core_checks_base = self._core_checks.value
        self._detections_base = self._detections.value
        self._frozen = None
        self.remediations.clear()

    def end_lifetime(self) -> None:
        """Freeze the per-lifetime readings at module unload.

        The shared counters keep counting for whoever polls next; without
        the freeze an unloaded module's lifetime view would silently grow
        with a successor's activity.
        """
        self._frozen = (self.polls, self.core_checks, self.detections)

    @property
    def polls(self) -> int:
        """Poll-loop iterations since load (``countermeasure.polls``)."""
        if self._frozen is not None:
            return self._frozen[0]
        return self._polls.value - self._polls_base

    @property
    def core_checks(self) -> int:
        """Per-core checks since load (``countermeasure.core_checks``)."""
        if self._frozen is not None:
            return self._frozen[1]
        return self._core_checks.value - self._core_checks_base

    @property
    def detections(self) -> int:
        """Unsafe-state detections since load (``countermeasure.detections``)."""
        if self._frozen is not None:
            return self._frozen[2]
        return self._detections.value - self._detections_base

    def record_poll(self) -> None:
        """Count one poll-loop iteration."""
        self._polls.inc()

    def record_core_check(self) -> None:
        """Count one per-core MSR inspection."""
        self._core_checks.inc()

    def record_detection(self) -> None:
        """Count one unsafe-state detection."""
        self._detections.inc()


class PollingCountermeasure(KernelModule):
    """The paper's countermeasure, as a loadable kernel module.

    Parameters
    ----------
    machine:
        The simulated system to protect.
    unsafe_states:
        Characterization output of Algo 2 for this system.
    period_s:
        Polling period of the module's kthread.
    policy:
        Safe-state restoration policy (default: clamp to the per-frequency
        boundary, preserving benign undervolts).
    fast_offset_read:
        Read 0x150's response register directly (one driver call per
        core, the way Algo 3 is written).  Set to False to issue the full
        OCM read-request command first (two driver calls), the pedantic
        mailbox protocol.
    period_jitter:
        Relative scheduling jitter of the kthread (0.2 = each interval is
        drawn uniformly from period*[0.8, 1.2]).  Models kernel scheduling
        noise; prevention holds as long as the *maximum* jittered interval
        still undercuts the regulator's apply delay.
    detection_margin_mv:
        Conservative widening of the unsafe-set membership test: offsets
        within this many millivolts *above* the observed fault boundary
        are treated as unsafe too.  The empirical boundary is a stochastic
        estimate — cells just above the first observed fault may simply
        have sampled zero faults during characterization — so a module
        that trusts it verbatim leaves a few-mV sliver of genuinely
        faultable states unguarded.  The margin must stay below the
        restoration policies' margin so remediated states are not
        re-flagged.
    """

    name = "plug_your_volt"

    def __init__(
        self,
        machine: Machine,
        unsafe_states: UnsafeStateSet,
        *,
        period_s: float = DEFAULT_PERIOD_S,
        policy: Optional[SafeStatePolicy] = None,
        fast_offset_read: bool = True,
        period_jitter: float = 0.0,
        detection_margin_mv: float = 10.0,
    ) -> None:
        super().__init__()
        if period_s <= 0:
            raise ConfigurationError("polling period must be positive")
        if not 0.0 <= period_jitter < 1.0:
            raise ConfigurationError("period_jitter must lie in [0, 1)")
        if detection_margin_mv < 0:
            raise ConfigurationError("detection margin must be non-negative")
        if unsafe_states.is_empty:
            raise ConfigurationError(
                "refusing to deploy with an empty unsafe set: run Algo 2 first"
            )
        self._machine = machine
        self._unsafe_states = unsafe_states
        self._period_s = period_s
        self._policy = policy or ClampToBoundary()
        self._fast_offset_read = fast_offset_read
        self._period_jitter = period_jitter
        self._detection_margin_mv = detection_margin_mv
        self._recurring: Optional[RecurringEvent] = None
        self._jitter_event = None
        self.stats = PollingStats(machine.telemetry.registry)
        self._tracer = machine.telemetry.tracer
        self._trace_on = self._tracer.enabled
        self._turnaround = self.stats.registry.histogram(TURNAROUND_HISTOGRAM)
        # Like the stats counters, the turnaround histogram is shared
        # across lifetimes; track a per-lifetime sample baseline so a
        # reloaded module does not double-count the previous lifetime's
        # samples in its own reporting.
        self._turnaround_base = self._turnaround.count
        self._turnaround_frozen: Optional[int] = None

    @property
    def period_s(self) -> float:
        """Polling period in seconds."""
        return self._period_s

    def set_period(self, period_s: float) -> None:
        """Retune the polling period at runtime (sysfs store path).

        If the kthread is running it is re-armed at the new interval.
        """
        if period_s <= 0:
            raise ConfigurationError("polling period must be positive")
        self._period_s = period_s
        if self._recurring is not None:
            self._recurring.cancel()
            self._recurring = self._machine.simulator.schedule_recurring(
                period_s, self._poll_once
            )

    @property
    def policy(self) -> SafeStatePolicy:
        """The active restoration policy."""
        return self._policy

    @property
    def unsafe_states(self) -> UnsafeStateSet:
        """The characterization the module enforces."""
        return self._unsafe_states

    # -- KernelModule interface ---------------------------------------------------

    def on_load(self) -> None:
        """Start the polling kthread (Algo 3's ``while True``)."""
        # Defensive: a leftover kthread from a previous lifetime (e.g. a
        # load that raced an unload) would double-poll and double-count
        # every histogram sample once a second one is armed.
        self._disarm()
        self.stats.begin_lifetime()
        self._turnaround_base = self._turnaround.count
        self._turnaround_frozen = None
        if self._period_jitter > 0.0:
            self._arm_jittered()
        else:
            self._recurring = self._machine.simulator.schedule_recurring(
                self._period_s, self._poll_once
            )
        logger.info(
            "plug_your_volt loaded: period=%.0fus policy=%s cores=%d",
            self._period_s * 1e6,
            self._policy.name,
            len(self._machine.processor.cores),
        )

    def on_unload(self) -> None:
        """Stop the polling kthread."""
        self._disarm()
        self._turnaround_frozen = self.turnaround_samples()
        self.stats.end_lifetime()
        logger.info(
            "plug_your_volt unloaded: polls=%d detections=%d",
            self.stats.polls,
            self.stats.detections,
        )

    # -- the polling loop body ------------------------------------------------------

    def _disarm(self) -> None:
        """Cancel the kthread's pending events, whichever mode armed them."""
        if self._recurring is not None:
            self._recurring.cancel()
            self._recurring = None
        if self._jitter_event is not None:
            self._jitter_event.cancel()
            self._jitter_event = None

    def turnaround_samples(self) -> int:
        """Turnaround-histogram samples recorded this lifetime.

        Frozen at unload, like the stats counters: the shared histogram
        keeps accumulating for later lifetimes.
        """
        if self._turnaround_frozen is not None:
            return self._turnaround_frozen
        return self._turnaround.count - self._turnaround_base

    def _arm_jittered(self) -> None:
        """Schedule the next jittered poll interval."""
        jitter = self._period_jitter
        factor = 1.0 + float(self._machine.rng.uniform(-jitter, jitter))
        self._jitter_event = self._machine.simulator.schedule(
            self._period_s * factor, self._jittered_fire
        )

    def _jittered_fire(self) -> None:
        self._poll_once()
        if self.loaded:
            self._arm_jittered()

    def _poll_once(self) -> None:
        """One iteration of Algo 3's outer loop: check every core."""
        self.stats.record_poll()
        now = self._machine.now
        for core in self._machine.processor.cores:
            self._check_core(core.index)
        if self._trace_on:
            self._tracer.complete(
                "countermeasure.poll", "countermeasure", now,
                self.cpu_time_per_poll_s(), track="countermeasure",
            )

    def _check_core(self, core_index: int) -> None:
        """Algo 3, lines 4-7 for one core."""
        driver = self._machine.msr_driver
        self.stats.record_core_check()
        perf_value = driver.read(core_index, IA32_PERF_STATUS)  # line 4
        if not self._fast_offset_read:
            driver.write(core_index, MSR_OC_MAILBOX, read_request(plane=0))
        mailbox_value = driver.read(core_index, MSR_OC_MAILBOX)  # line 5
        status = decode_core_status(perf_value, mailbox_value)
        probe_offset = status.offset_mv - self._detection_margin_mv
        if not self._unsafe_states.is_unsafe(status.frequency_ghz, probe_offset):
            return  # line 6: not in (margin-widened) unsafe set
        now = self._machine.now
        self.stats.record_detection()
        if self._trace_on:
            self._tracer.instant(
                "countermeasure.detection", "countermeasure", now,
                track="countermeasure", core=core_index,
                frequency_ghz=status.frequency_ghz, offset_mv=status.offset_mv,
            )
        safe_offset = self._policy.safe_offset_mv(self._unsafe_states, status)
        driver.write(core_index, MSR_OC_MAILBOX, offset_voltage(safe_offset, plane=0))  # line 7
        # Detection-to-settled latency, the Sec. 5 decomposition: the
        # per-core ioctl chain (charged as driver busy time, not sim
        # time) plus the regulator's settle window for the remediation
        # write (a raise, so the fast latency applies).
        accesses = 3 if self._fast_offset_read else 4
        ioctl_chain = accesses * driver.access_latency_s
        regulator = self._machine.processor.core(core_index).regulator
        settle_delta = max(0.0, regulator.settle_time(VoltagePlane.CORE) - now)
        turnaround = ioctl_chain + settle_delta
        self._turnaround.observe(turnaround)
        if self._trace_on:
            self._tracer.complete(
                "countermeasure.remediation", "countermeasure", now, turnaround,
                track="countermeasure", core=core_index,
                observed_mv=status.offset_mv, restored_mv=safe_offset,
            )
        self.stats.remediations.append(
            RemediationEvent(
                time_s=now,
                core_index=core_index,
                observed=status,
                restored_offset_mv=safe_offset,
            )
        )
        logger.warning(
            "unsafe state on core %d: %.1f GHz / %.0f mV -> restored to %.0f mV",
            core_index,
            status.frequency_ghz,
            status.offset_mv,
            safe_offset,
        )

    # -- analysis helpers ---------------------------------------------------------------

    def cpu_time_per_poll_s(self) -> float:
        """ioctl time one full poll (all cores, no remediation) consumes."""
        accesses_per_core = 2 if self._fast_offset_read else 3
        return (
            len(self._machine.processor.cores)
            * accesses_per_core
            * self._machine.msr_driver.access_latency_s
        )

    def duty_cycle(self) -> float:
        """Fraction of one core's time the polling thread consumes."""
        return self.cpu_time_per_poll_s() / self._period_s

    def worst_case_turnaround_s(self) -> float:
        """Upper bound on unsafe-state dwell before remediation settles.

        One full period (the attacker's write may land right after a
        poll), plus the per-core ioctl chain, plus the regulator settle
        latency of the remediation write — the two delay contributors
        Sec. 5 names, plus the polling quantum.  Remediation *raises* the
        voltage, so the fast raise latency applies.
        """
        accesses = 3 if self._fast_offset_read else 4
        ioctl_chain = accesses * self._machine.msr_driver.access_latency_s
        return self._period_s + ioctl_chain + self._machine.model.regulator_raise_latency_s
