"""Sec. 5.2: deployment at the hardware level (a model-specific register).

The paper proposes a new MSR — called ``MSR_VOLTAGE_OFFSET_LIMIT`` here —
following the semantics of the ``MSR_DRAM_POWER_LIMIT`` (0x618) /
``MSR_DRAM_POWER_INFO`` (0x61C) pair: just as any DRAM power setting below
``DRAM_MIN_PWR`` is *clamped* to it, any voltage offset written to 0x150
deeper than the limit is clamped to the limit, making the register a
hardware gatekeeper against unsafe states.

Differences from the microcode deployment (Sec. 5.1):

* writes are **clamped**, not ignored — an over-deep request still lands,
  at the deepest safe value (maximal availability for benign undervolt);
* the limit itself is software-visible in the new MSR and can be locked
  (a write-once lock bit, as Intel uses for e.g. ``IA32_FEATURE_CONTROL``)
  so a privileged adversary cannot lift it after boot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.cpu import ocm
from repro.cpu.msr import MSR_OC_MAILBOX, MSR_VOLTAGE_OFFSET_LIMIT
from repro.cpu.processor import SimulatedProcessor

#: Lock bit of the proposed register: once set, further limit changes are
#: ignored until reset.
LIMIT_LOCK_BIT = 1 << 63


def encode_limit(offset_mv: float) -> int:
    """Encode a limit into the proposed MSR (offset field as in 0x150)."""
    return ocm.encode_offset_field(ocm.mv_to_units(offset_mv))


def decode_limit(value: int) -> float:
    """Extract the millivolt limit from the proposed MSR."""
    return ocm.units_to_mv(ocm.decode_offset_field(value))


@dataclass
class VoltageOffsetLimit:
    """The hardware clamp: MSR_VOLTAGE_OFFSET_LIMIT wired into ``wrmsr 0x150``.

    Parameters
    ----------
    limit_mv:
        Maximal safe state for the part (from Algo 2); vendor-fused.
    """

    limit_mv: float
    clamped_writes: int = 0
    _processor: Optional[SimulatedProcessor] = field(default=None, repr=False)
    _locked: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.limit_mv > 0:
            raise ConfigurationError("the offset limit must be <= 0 (an undervolt bound)")

    @property
    def applied(self) -> bool:
        """Whether the clamp is live on a processor."""
        return self._processor is not None

    @property
    def locked(self) -> bool:
        """Whether the limit register is locked against changes."""
        return self._locked

    def apply(self, processor: SimulatedProcessor) -> None:
        """Fuse the limit into the processor and arm the clamp."""
        if self._processor is not None:
            raise ConfigurationError("voltage-offset limit already applied")
        processor.msr.poke(0, MSR_VOLTAGE_OFFSET_LIMIT, encode_limit(self.limit_mv))
        processor.msr.add_write_hook(MSR_VOLTAGE_OFFSET_LIMIT, self._limit_write_hook)
        processor.msr.insert_write_hook(MSR_OC_MAILBOX, self._clamp_hook)
        self._processor = processor

    def revert(self) -> None:
        """Remove the clamp (simulating a part without the feature)."""
        if self._processor is None:
            raise ConfigurationError("voltage-offset limit not applied")
        self._processor.msr.remove_write_hook(MSR_OC_MAILBOX, self._clamp_hook)
        self._processor = None

    def lock(self) -> None:
        """Set the write-once lock: the limit can no longer be changed."""
        self._locked = True

    # -- hooks ---------------------------------------------------------------

    def _limit_write_hook(self, core_index: int, value: int) -> Optional[int]:
        """Allow limit updates only while unlocked; honour the lock bit."""
        if self._locked:
            return None
        if value & LIMIT_LOCK_BIT:
            self._locked = True
            value &= ~LIMIT_LOCK_BIT
        self.limit_mv = decode_limit(value)
        return value

    def _clamp_hook(self, core_index: int, value: int) -> Optional[int]:
        """Clamp over-deep offset writes to the limit (DRAM_MIN_PWR style)."""
        command = ocm.decode_command(value)
        if not command.is_write:
            return value
        if command.offset_mv >= self.limit_mv:
            return value
        self.clamped_writes += 1
        return ocm.encode_write(self.limit_mv, int(command.plane))


def install_msr_clamp(
    processor: SimulatedProcessor, limit_mv: float, *, lock: bool = True
) -> VoltageOffsetLimit:
    """Convenience: fuse, arm and (by default) lock the clamp."""
    clamp = VoltageOffsetLimit(limit_mv=limit_mv)
    clamp.apply(processor)
    if lock:
        clamp.lock()
    return clamp
