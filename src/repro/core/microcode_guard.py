"""Sec. 5.1: deployment at the micro-architectural level (microcode).

The microcode ROM stores the **maximal safe state**; whenever a ``wrmsr``
targets MSR 0x150, a microcode conditional branch checks the requested
offset against it and — if the write would put the system into an unsafe
state — *ignores* the write, the same write-ignore behaviour Intel
documents for several MSRs.

In the simulation the "microcode sequencer" is a write hook inserted
*ahead* of the overclocking-mailbox logic, so a rejected write never
reaches the voltage regulator at all: the guard has zero turnaround time,
unlike the polling module.  Only CPU vendors can deploy this on real
silicon; here it demonstrates that the safe-state characterization is
sufficient for such a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError, MSRWriteIgnoredError
from repro.cpu import ocm
from repro.cpu.msr import MSR_OC_MAILBOX
from repro.cpu.processor import SimulatedProcessor


@dataclass
class MicrocodeGuard:
    """A simulated microcode update enforcing the maximal safe state.

    Parameters
    ----------
    maximal_safe_offset_mv:
        The deepest offset safe at every frequency (from Algo 2's
        characterization via
        :meth:`~repro.core.unsafe_states.UnsafeStateSet.maximal_safe_offset_mv`).
    raise_on_ignore:
        Real microcode ignores the write silently; tests can set this to
        surface an :class:`~repro.errors.MSRWriteIgnoredError` instead.
    """

    maximal_safe_offset_mv: float
    raise_on_ignore: bool = False
    ignored_writes: int = 0
    ignored_log: List[tuple] = field(default_factory=list, repr=False)
    _processor: Optional[SimulatedProcessor] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.maximal_safe_offset_mv > 0:
            raise ConfigurationError("maximal safe offset must be <= 0 (an undervolt bound)")

    @property
    def applied(self) -> bool:
        """Whether the microcode update is live on a processor."""
        return self._processor is not None

    def apply(self, processor: SimulatedProcessor) -> None:
        """Load the microcode update (BIOS/UEFI load at reset, Sec. 5.1)."""
        if self._processor is not None:
            raise ConfigurationError("microcode guard already applied")
        processor.msr.insert_write_hook(MSR_OC_MAILBOX, self._sequencer_hook)
        self._processor = processor

    def revert(self) -> None:
        """Unload the update (a reset back to stock microcode)."""
        if self._processor is None:
            raise ConfigurationError("microcode guard not applied")
        self._processor.msr.remove_write_hook(MSR_OC_MAILBOX, self._sequencer_hook)
        self._processor = None

    # -- the conditional microcode branch -------------------------------------

    def _sequencer_hook(self, core_index: int, value: int) -> Optional[int]:
        """Runs on every ``wrmsr 0x150`` before the mailbox logic."""
        command = ocm.decode_command(value)
        if not command.is_write:
            return value
        if command.offset_mv >= self.maximal_safe_offset_mv:
            return value
        self.ignored_writes += 1
        self.ignored_log.append((core_index, command.offset_mv))
        if self.raise_on_ignore:
            raise MSRWriteIgnoredError(
                f"microcode ignored offset {command.offset_mv:.0f} mV "
                f"(maximal safe state {self.maximal_safe_offset_mv:.0f} mV)"
            )
        return None  # write-ignore: the request never reaches the regulator
