"""The paper's contribution: safe/unsafe characterization and countermeasures.

* :mod:`repro.core.encoding` — Algorithm 1 (MSR 0x150 value computation);
* :mod:`repro.core.characterization` — Algorithm 2 (the DVFS/EXECUTE
  thread pair sweeping the frequency x offset grid);
* :mod:`repro.core.unsafe_states` — the unsafe-state set and the maximal
  safe state of Sec. 5;
* :mod:`repro.core.polling_module` — Algorithm 3 (the polling kernel
  module);
* :mod:`repro.core.policy` — restoration policies for remediation writes;
* :mod:`repro.core.microcode_guard` — Sec. 5.1 microcode deployment;
* :mod:`repro.core.msr_clamp` — Sec. 5.2 hardware MSR deployment.
"""

from repro.core.adaptive import (
    AdaptiveCharacterization,
    AdaptiveConfig,
    AdaptiveOutcome,
)
from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationFramework,
    CharacterizationResult,
)
from repro.core.encoding import (
    CoreStatus,
    decode_core_status,
    decode_offset_mv,
    offset_voltage,
    read_request,
)
from repro.core.microcode_guard import MicrocodeGuard
from repro.core.msr_clamp import VoltageOffsetLimit, install_msr_clamp
from repro.core.policy import (
    ClampToBoundary,
    ClampToMaximalSafe,
    RestoreToZero,
    SafeStatePolicy,
)
from repro.core.polling_module import (
    DEFAULT_PERIOD_S,
    PollingCountermeasure,
    PollingStats,
    RemediationEvent,
)
from repro.core.unsafe_states import DEFAULT_SAFETY_MARGIN_MV, CellResult, UnsafeStateSet
from repro.core.verification import (
    VerificationProbe,
    VerificationReport,
    verify_deployment,
)

__all__ = [
    "AdaptiveCharacterization",
    "AdaptiveConfig",
    "AdaptiveOutcome",
    "CharacterizationConfig",
    "CharacterizationFramework",
    "CharacterizationResult",
    "CoreStatus",
    "decode_core_status",
    "decode_offset_mv",
    "offset_voltage",
    "read_request",
    "MicrocodeGuard",
    "VoltageOffsetLimit",
    "install_msr_clamp",
    "ClampToBoundary",
    "ClampToMaximalSafe",
    "RestoreToZero",
    "SafeStatePolicy",
    "DEFAULT_PERIOD_S",
    "PollingCountermeasure",
    "PollingStats",
    "RemediationEvent",
    "CellResult",
    "DEFAULT_SAFETY_MARGIN_MV",
    "UnsafeStateSet",
    "VerificationProbe",
    "VerificationReport",
    "verify_deployment",
]
