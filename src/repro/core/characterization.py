"""Algorithm 2: empirical characterization of unsafe system states.

The framework runs two threads (Sec. 4.2):

* the **DVFS thread** enumerates the Cartesian product of the frequency
  table (0.1 GHz resolution) and negative voltage offsets
  ``{-1, ..., -300}`` mV, programming each pair through ``cpupower`` and
  MSR 0x150;
* the **EXECUTE thread** runs one million ``imul`` iterations per cell and
  reports incorrect products.

A faulting cell joins the unsafe set; probing continues deeper "until we
observe a system crash", which bounds the unsafe region's width at that
frequency and triggers a reboot.

Two execution modes are provided:

* ``run()`` — *direct* mode: each cell is evaluated at settled conditions
  without the event timeline.  This is the fast path used to regenerate
  the full Figs. 2-4 grids (thousands of cells).
* ``run_on_machine()`` — *event* mode: the DVFS thread drives a live
  :class:`~repro.testbench.Machine` through cpupower and MSR writes with
  real regulator settle latency, exactly as Algo 2 is written.  Used by
  integration tests and the turnaround-time experiments.

Both modes discover the same boundary because the direct mode is simply
the settled fixed point of the event mode.

Direct mode is organised as independent per-frequency *rows*: each row
draws its randomness from a named seed stream keyed by (seed, system,
row), so the sweep can be sharded across the campaign engine's worker
processes and still reproduce the serial result byte for byte.  ``run()``
is simply the in-process fold of every row job.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, MachineCheckError
from repro.core.unsafe_states import CellResult, UnsafeStateSet
from repro.cpu.models import CPUModel
from repro.faults.imul import DEFAULT_ITERATIONS, ImulLoop
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel
from repro.testbench import Machine
from repro.vector.profile import kernel_profiler

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CharacterizationConfig:
    """Sweep parameters for Algo 2.

    Defaults mirror the paper: the full frequency table at 0.1 GHz
    resolution and undervolt offsets from -1 mV to -300 mV.
    """

    offset_start_mv: int = -1
    offset_stop_mv: int = -300
    offset_step_mv: int = 1
    iterations: int = DEFAULT_ITERATIONS
    #: EXECUTE-thread repetitions per cell.  The default single window
    #: matches Algo 2; higher values tighten the empirical boundary (a
    #: near-onset cell has ~e^-1 odds of sampling zero faults per
    #: window, which shrinks exponentially with repeats).
    repetitions: int = 1
    frequencies_ghz: Optional[Sequence[float]] = None
    #: Stop probing deeper offsets at a frequency once the machine crashes
    #: (the paper characterises the unsafe-region width "until we observe
    #: a system crash").
    stop_after_crash: bool = True

    def __post_init__(self) -> None:
        if self.offset_start_mv >= 0 or self.offset_stop_mv >= 0:
            raise ConfigurationError("offsets must be negative (undervolting only)")
        if self.offset_start_mv <= self.offset_stop_mv:
            raise ConfigurationError(
                "offset_start_mv must be shallower (greater) than offset_stop_mv, "
                f"got start={self.offset_start_mv}, stop={self.offset_stop_mv}"
            )
        if self.offset_step_mv <= 0:
            raise ConfigurationError("offset_step_mv must be positive")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")

    def offsets_mv(self) -> List[int]:
        """The V set of Algo 2, shallow to deep."""
        return list(range(self.offset_start_mv, self.offset_stop_mv - 1, -self.offset_step_mv))

    def frequency_list(self, model: CPUModel) -> List[float]:
        """The F set of Algo 2 for a model."""
        if self.frequencies_ghz is not None:
            return [model.frequency_table.validate(f) for f in self.frequencies_ghz]
        return list(model.frequency_table.frequencies_ghz())


@dataclass
class CharacterizationResult:
    """Everything Algo 2 produced for one system."""

    model: CPUModel
    config: CharacterizationConfig
    cells: List[CellResult] = field(default_factory=list)
    unsafe_states: UnsafeStateSet = field(default_factory=UnsafeStateSet)
    crashes: int = 0

    def safe_cells(self) -> List[CellResult]:
        """Cells with no observed faults."""
        return [c for c in self.cells if not c.is_unsafe]

    def unsafe_cells(self) -> List[CellResult]:
        """Cells with faults (including crashes)."""
        return [c for c in self.cells if c.is_unsafe]

    def boundary_profile(self) -> List[Tuple[float, float]]:
        """(frequency, shallowest faulting offset) pairs — the Fig. 2-4 curve."""
        return self.unsafe_states.boundary_profile()

    def maximal_safe_offset_mv(self, *, margin_mv: float = 15.0) -> float:
        """Sec. 5's maximal safe state derived from this characterization."""
        return self.unsafe_states.maximal_safe_offset_mv(margin_mv=margin_mv)


class CharacterizationFramework:
    """Runs Algo 2 against a CPU model or a live machine."""

    def __init__(
        self,
        model: CPUModel,
        *,
        config: Optional[CharacterizationConfig] = None,
        seed: int = 2024,
    ) -> None:
        self.model = model
        self.config = config or CharacterizationConfig()
        self.seed = seed

    # -- direct mode ------------------------------------------------------------

    def empty_result(self) -> CharacterizationResult:
        """A result shell rows are folded into (used by the engine too)."""
        return CharacterizationResult(
            model=self.model,
            config=self.config,
            unsafe_states=UnsafeStateSet(system=self.model.codename),
        )

    def row_stream(self, frequency_ghz: float):
        """The named seed stream one row's fault sampling draws from.

        Keyed by (seed, system, row frequency) only — independent of row
        execution order and of which process runs the row, which is what
        makes serial and process-pool sweeps byte-identical.
        """
        from repro.engine.seeds import seed_stream

        return seed_stream(
            self.seed,
            "characterization",
            self.model.codename,
            f"row@{int(round(frequency_ghz * 10))}",
        )

    def run_row(self, frequency_ghz: float, *, telemetry=None) -> List[CellResult]:
        """Probe every offset of one frequency row (Algo 2's inner loop)."""
        profiler = kernel_profiler()
        started = perf_counter() if profiler is not None else 0.0
        fault_model = FaultModel(self.model)
        injector = FaultInjector(
            fault_model, self.row_stream(frequency_ghz).rng(), telemetry=telemetry
        )
        loop = ImulLoop(self.config.iterations)
        cells: List[CellResult] = []
        for offset in self.config.offsets_mv():
            conditions = fault_model.conditions_for_offset(frequency_ghz, offset)
            fault_count = 0
            crashed = False
            for _ in range(self.config.repetitions):
                try:
                    report = loop.run(injector, conditions)
                except MachineCheckError:
                    crashed = True
                    break
                fault_count += report.fault_count
            if crashed:
                cells.append(CellResult(frequency_ghz, offset, fault_count=0, crashed=True))
                logger.debug("crash at %.1f GHz / %d mV", frequency_ghz, offset)
                if self.config.stop_after_crash:
                    break
                continue
            cells.append(CellResult(frequency_ghz, offset, fault_count, crashed=False))
        if profiler is not None:
            # The scalar oracle shows up as one opaque bucket — there is no
            # finer-grained attribution to give, which is precisely what the
            # before/after profile comparison against the batch path's
            # vector.delay / vector.safety / vector.fault_draw sites shows.
            profiler.record_site(
                "core.characterization",
                "run_row.scalar",
                events=len(cells),
                wall_s=perf_counter() - started,
            )
        return cells

    def run_row_batch(self, frequency_ghz: float, *, telemetry=None) -> List[CellResult]:
        """Probe one frequency row on the vectorized fast path.

        Byte-identical to :meth:`run_row` — same cells, same telemetry
        counter totals, same trace events, same random-stream consumption
        — with the physics evaluated by :mod:`repro.vector` over the whole
        offset array per call.  The fuzz suite in
        ``tests/test_vector_identity.py`` holds the two paths in lockstep.
        """
        from repro.vector.characterization import run_row_batch

        return run_row_batch(self, frequency_ghz, telemetry=telemetry)

    def row_jobs(self, *, as_of_seed: Optional[int] = None) -> List[object]:
        """The sweep expressed as engine row jobs, one per frequency."""
        from repro.engine.jobs import CharacterizationRowJob

        seed = self.seed if as_of_seed is None else as_of_seed
        return [
            CharacterizationRowJob(
                codename=self.model.codename,
                frequency_ghz=frequency,
                config=self.config,
                seed=seed,
            )
            for frequency in self.config.frequency_list(self.model)
        ]

    def fold_row(self, result: CharacterizationResult, cells: Iterable[CellResult]) -> None:
        """Fold one row's cells into ``result`` (order-preserving)."""
        for cell in cells:
            result.cells.append(cell)
            if cell.crashed:
                result.unsafe_states.add_crash(cell.frequency_ghz, cell.offset_mv)
                result.crashes += 1
            elif cell.is_unsafe:
                result.unsafe_states.add_unsafe(cell.frequency_ghz, cell.offset_mv)

    def run(self, *, batch: bool = False) -> CharacterizationResult:
        """Sweep the full grid at settled conditions (fast path).

        Identical to executing :meth:`row_jobs` through any engine
        executor and folding the rows in frequency order.  With
        ``batch=True`` each row is evaluated by the vectorized
        :meth:`run_row_batch` instead of the scalar oracle — the result is
        byte-identical either way.
        """
        run_row = self.run_row_batch if batch else self.run_row
        result = self.empty_result()
        for frequency in self.config.frequency_list(self.model):
            self.fold_row(result, run_row(frequency))
        return result

    # -- event mode --------------------------------------------------------------

    def run_on_machine(
        self,
        machine: Machine,
        *,
        core_index: int = 0,
        frequencies_ghz: Optional[Iterable[float]] = None,
        offsets_mv: Optional[Iterable[int]] = None,
    ) -> CharacterizationResult:
        """Algo 2 as written: drive a live machine through its interfaces.

        Per cell: ``CPU_POWER(test_frequency)`` (line 9), write the Algo 1
        value to 0x150 (lines 10-11), let the regulator settle, run the
        EXECUTE thread, then restore frequency and offset (lines 13-14).
        On a machine check the cell is recorded as a crash, the machine
        reboots, and the sweep moves to the next frequency.
        """
        result = CharacterizationResult(
            model=self.model,
            config=self.config,
            unsafe_states=UnsafeStateSet(system=self.model.codename),
        )
        frequencies = (
            list(frequencies_ghz)
            if frequencies_ghz is not None
            else self.config.frequency_list(self.model)
        )
        offsets = list(offsets_mv) if offsets_mv is not None else self.config.offsets_mv()
        settle = self.model.regulator_latency_s * 1.05

        original_frequency = machine.processor.core(core_index).frequency_ghz  # line 6
        original_offset = machine.processor.core(core_index).target_offset_mv()  # line 7

        for frequency in frequencies:
            for offset in offsets:
                machine.cpupower.frequency_set(frequency, core_index=core_index)  # line 9
                machine.write_voltage_offset(offset, core_index)  # lines 10-11
                machine.advance(settle)
                try:
                    report = machine.run_imul_window(
                        core_index, iterations=self.config.iterations
                    )
                except MachineCheckError:
                    cell = CellResult(frequency, offset, fault_count=0, crashed=True)
                    result.cells.append(cell)
                    result.unsafe_states.add_crash(frequency, offset)
                    result.crashes += 1
                    machine.reboot(settle_s=settle)
                    if self.config.stop_after_crash:
                        break
                    continue
                cell = CellResult(frequency, offset, report.fault_count, crashed=False)
                result.cells.append(cell)
                if cell.is_unsafe:  # lines 15-16
                    result.unsafe_states.add_unsafe(frequency, offset)
            # lines 13-14: restore normal frequency and voltage
            machine.cpupower.frequency_set(original_frequency, core_index=core_index)
            machine.write_voltage_offset(original_offset, core_index)
            machine.advance(settle)
        return result
