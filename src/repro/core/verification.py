"""Post-deployment verification: prove the module protects *this* machine.

A real operator who insmods the countermeasure wants evidence, not
faith: re-run a slice of the attack campaign against the live, protected
machine and confirm zero faults.  This module packages that acceptance
test — it samples characterized-unsafe cells (the shallowest boundary
cells, the deepest probed cells, and random fills), mounts the Algo-2
attack pattern against each, and reports what the victim observed.

The same routine doubles as a regression check after microcode updates
or policy changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError, MachineCheckError
from repro.core.unsafe_states import UnsafeStateSet
from repro.testbench import Machine


@dataclass(frozen=True)
class VerificationProbe:
    """One attempted attack cell and what the victim saw."""

    frequency_ghz: float
    offset_mv: int
    faults: int
    crashed: bool
    detected: bool


@dataclass
class VerificationReport:
    """Outcome of a deployment verification run."""

    probes: List[VerificationProbe] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        """Faults the victim observed across all probes."""
        return sum(p.faults for p in self.probes)

    @property
    def crashes(self) -> int:
        """Machine checks across all probes."""
        return sum(p.crashed for p in self.probes)

    @property
    def passed(self) -> bool:
        """Zero faults and zero crashes — the Sec. 4.3 acceptance bar."""
        return self.total_faults == 0 and self.crashes == 0

    def summary(self) -> str:
        """One-line verdict for logs."""
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"deployment verification {verdict}: {len(self.probes)} unsafe cells "
            f"probed, {self.total_faults} faults, {self.crashes} crashes"
        )


def _select_cells(
    unsafe_states: UnsafeStateSet, samples: int, rng
) -> List[Tuple[float, int]]:
    """Pick verification cells: the global shallowest boundary, each
    frequency-extreme, and random boundary cells in between."""
    frequencies = unsafe_states.frequencies_ghz()
    if not frequencies:
        raise ConfigurationError("empty unsafe set: nothing to verify against")
    cells: List[Tuple[float, int]] = []
    shallowest = max(frequencies, key=lambda f: unsafe_states.boundary_mv(f))
    anchors = {frequencies[0], frequencies[-1], shallowest}
    for frequency in sorted(anchors):
        cells.append((frequency, int(unsafe_states.boundary_mv(frequency)) - 5))
    while len(cells) < samples:
        frequency = frequencies[int(rng.integers(0, len(frequencies)))]
        boundary = int(unsafe_states.boundary_mv(frequency))
        depth = int(rng.integers(1, 20))
        cells.append((frequency, boundary - depth))
    return cells[:samples]


def verify_deployment(
    machine: Machine,
    unsafe_states: UnsafeStateSet,
    *,
    samples: int = 10,
    iterations_per_probe: int = 500_000,
    core_index: int = 0,
) -> VerificationReport:
    """Attack the protected machine at known-unsafe cells; expect nothing.

    Each probe follows the Algo-2 attack pattern (pin frequency, write
    the unsafe offset, wait out the regulator, run the EXECUTE window).
    With the countermeasure loaded every probe must come back clean; a
    single fault or crash fails the report.

    Raises
    ------
    ConfigurationError
        If ``samples`` is not positive or the unsafe set is empty.
    """
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    report = VerificationReport()
    settle = machine.model.regulator_latency_s * 1.2
    cells = _select_cells(unsafe_states, samples, machine.rng)
    for frequency, offset in cells:
        detections_before = _detection_count(machine)
        machine.cpupower.frequency_set(frequency, core_index=core_index)
        machine.write_voltage_offset(offset, core_index)
        machine.advance(settle)
        try:
            window = machine.run_imul_window(core_index, iterations=iterations_per_probe)
            faults, crashed = window.fault_count, False
        except MachineCheckError:
            faults, crashed = 0, True
            machine.reboot(settle_s=settle)
        report.probes.append(
            VerificationProbe(
                frequency_ghz=frequency,
                offset_mv=offset,
                faults=faults,
                crashed=crashed,
                detected=_detection_count(machine) > detections_before,
            )
        )
        machine.write_voltage_offset(0, core_index)
        machine.advance(settle)
    return report


def _detection_count(machine: Machine) -> int:
    """Detections of the loaded polling module, 0 if none is loaded."""
    from repro.sgx.attestation import COUNTERMEASURE_MODULE

    if not machine.modules.is_loaded(COUNTERMEASURE_MODULE):
        return 0
    module = machine.modules.get(COUNTERMEASURE_MODULE)
    return getattr(module, "stats").detections
