"""Algorithm 1: voltage-offset computation, plus readout decoding.

This module is the countermeasure-side view of the MSR encodings.  The
``offset_voltage`` procedure is a line-for-line transcription of Algo 1:

    1: procedure OFFSET_VOLTAGE(offset, plane)
    2:   set val <- (offset*1024/1000)
    3:   set val <- 0xFFE00000 and ((val and 0xFFF) left-shift 21)
    4:   set val <- val or 0x8000001100000000
    5:   set val <- val or (plane left-shift 40)
    6:   return val

The decode helpers interpret what the polling module reads back from
MSR 0x150 (current voltage offset) and MSR 0x198 (current frequency and
voltage) in Algo 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidPlaneError, InvalidVoltageOffsetError
from repro.cpu import ocm, perf_status

_MASK64 = (1 << 64) - 1


def offset_voltage(offset_mv: float, plane: int = 0) -> int:
    """Algorithm 1 of the paper, bit for bit.

    Parameters
    ----------
    offset_mv:
        Signed voltage offset in millivolts (negative = undervolt).
    plane:
        Voltage plane per Table 1 (0 = CPU core).

    Raises
    ------
    InvalidVoltageOffsetError
        If the offset does not fit the signed 11-bit field.
    InvalidPlaneError
        If the plane index is outside Table 1's range.
    """
    if not 0 <= plane <= 4:
        raise InvalidPlaneError(f"plane {plane} outside Table 1 range 0-4")
    val = int(offset_mv * 1024 / 1000)                      # line 2
    # Guard before line 3: the 0xFFF literal would silently fold 12-bit
    # inputs into the 11-bit field (see ocm.validate_offset_units).
    try:
        ocm.validate_offset_units(val)
    except InvalidVoltageOffsetError:
        raise InvalidVoltageOffsetError(
            f"offset {offset_mv} mV does not fit the 11-bit field"
        ) from None
    val = 0xFFE00000 & ((val & 0xFFF) << 21)                # line 3
    val = val | 0x8000001100000000                          # line 4
    val = val | (plane << 40)                               # line 5
    return val & _MASK64                                    # line 6


def read_request(plane: int = 0) -> int:
    """The 0x150 command requesting a read-back of a plane's offset."""
    return ocm.encode_read_request(plane)


def decode_offset_mv(msr150_value: int) -> float:
    """Millivolt offset carried in bits [31:21] of a 0x150 value."""
    return ocm.units_to_mv(ocm.decode_offset_field(msr150_value))


@dataclass(frozen=True)
class CoreStatus:
    """What one polling iteration learns about a core (Algo 3, lines 4-5)."""

    frequency_ghz: float
    voltage_volts: float
    offset_mv: float


def decode_core_status(msr198_value: int, msr150_value: int) -> CoreStatus:
    """Combine the 0x198 and 0x150 readouts into a core status."""
    status = perf_status.decode(msr198_value)
    return CoreStatus(
        frequency_ghz=status.frequency_ghz,
        voltage_volts=status.voltage_volts,
        offset_mv=decode_offset_mv(msr150_value),
    )
