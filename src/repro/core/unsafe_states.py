"""The safe/unsafe state characterization result (Sec. 3.3 / 4.2).

An *unsafe state* is a (core frequency, core voltage offset) pair at which
DVFS faults occur (Eq. 3); the set of such pairs is what Algo 2 builds and
what the polling countermeasure (Algo 3) consults on every iteration.

:class:`UnsafeStateSet` stores the characterized cells and derives the
quantities the countermeasure needs:

* the per-frequency **boundary** — the shallowest (least negative) offset
  observed to fault at that frequency;
* a per-frequency **safe restore target** with a configurable margin;
* the **maximal safe state** (Sec. 5) — the deepest offset that is safe at
  *every* frequency of the spectrum, enabling the microcode and MSR-level
  deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CharacterizationError, ConfigurationError
from repro.units import ratio_to_ghz

#: Default back-off (mV) applied above an *observed* fault boundary when
#: deriving a safe restore target.  The empirical boundary is a stochastic
#: estimate: cells a few mV shallower than the first observed fault may
#: simply have sampled zero faults in one million iterations, so a thin
#: margin can leave the restored state marginally faulty.  Fifteen
#: millivolts (~1.5 sigma of the per-path spread) puts the restore target
#: comfortably above the fault onset.
DEFAULT_SAFETY_MARGIN_MV = 15.0


def _freq_key(frequency_ghz: float) -> int:
    """Quantize a frequency to the 0.1 GHz grid used by Algo 2."""
    return int(round(frequency_ghz * 10))


@dataclass(frozen=True)
class CellResult:
    """Outcome of probing one (frequency, offset) cell."""

    frequency_ghz: float
    offset_mv: int
    fault_count: int
    crashed: bool

    @property
    def is_unsafe(self) -> bool:
        """Whether the cell showed faults or crashed the machine."""
        return self.crashed or self.fault_count > 0


@dataclass
class UnsafeStateSet:
    """Characterized unsafe (frequency, voltage-offset) pairs for a system.

    Offsets are negative millivolt integers (undervolts), matching the
    paper's search space ``V = {-1, -2, ..., -300}``.
    """

    system: str = "unknown"
    _unsafe: Dict[int, set] = field(default_factory=dict, repr=False)
    _crash: Dict[int, set] = field(default_factory=dict, repr=False)

    # -- construction --------------------------------------------------------

    def add_unsafe(self, frequency_ghz: float, offset_mv: int) -> None:
        """Record a faulting cell (Algo 2, line 16)."""
        self._unsafe.setdefault(_freq_key(frequency_ghz), set()).add(int(offset_mv))

    def add_crash(self, frequency_ghz: float, offset_mv: int) -> None:
        """Record a crash cell (also unsafe — maximally so)."""
        key = _freq_key(frequency_ghz)
        self._crash.setdefault(key, set()).add(int(offset_mv))
        self._unsafe.setdefault(key, set()).add(int(offset_mv))

    def extend(self, cells: Iterable[CellResult]) -> None:
        """Fold a batch of probed cells into the set."""
        for cell in cells:
            if cell.crashed:
                self.add_crash(cell.frequency_ghz, cell.offset_mv)
            elif cell.fault_count > 0:
                self.add_unsafe(cell.frequency_ghz, cell.offset_mv)

    def merge(self, other: "UnsafeStateSet") -> "UnsafeStateSet":
        """Union with another characterization of the same system.

        Merging is how multi-condition characterizations compose: e.g.
        sweeps taken at different die temperatures (whose worst case is
        frequency-dependent) or after a microcode update.  The union is
        conservative — a state unsafe under *any* merged condition is
        treated as unsafe.
        """
        merged = UnsafeStateSet(system=self.system)
        for source in (self, other):
            for key, offsets in source._unsafe.items():
                merged._unsafe.setdefault(key, set()).update(offsets)
            for key, offsets in source._crash.items():
                merged._crash.setdefault(key, set()).update(offsets)
        return merged

    # -- queries ----------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether no unsafe cell has been recorded."""
        return not self._unsafe

    def frequencies_ghz(self) -> List[float]:
        """All characterized frequencies with unsafe cells, ascending."""
        return [ratio_to_ghz(key) for key in sorted(self._unsafe)]

    def unsafe_offsets(self, frequency_ghz: float) -> List[int]:
        """All recorded unsafe offsets at a frequency, descending depth."""
        return sorted(self._unsafe.get(_freq_key(frequency_ghz), ()), reverse=True)

    def crash_offsets(self, frequency_ghz: float) -> List[int]:
        """All recorded crash offsets at a frequency."""
        return sorted(self._crash.get(_freq_key(frequency_ghz), ()), reverse=True)

    def boundary_mv(self, frequency_ghz: float) -> Optional[float]:
        """Shallowest unsafe offset at a frequency, or None if all safe.

        Any offset at or below (deeper than) this value is treated as
        unsafe: the unsafe region is downward-closed in voltage, because
        lowering the voltage only inflates ``T_src + T_prop`` further
        (observation O3).
        """
        offsets = self._unsafe.get(_freq_key(frequency_ghz))
        if not offsets:
            return None
        return float(max(offsets))

    def effective_boundary_mv(self, frequency_ghz: float) -> Optional[float]:
        """Boundary at a frequency, interpolated if not directly probed.

        For a frequency between characterized points the boundary is the
        *shallower* (more conservative) of the two neighbours; outside the
        characterized range it is the nearest endpoint's.
        """
        exact = self.boundary_mv(frequency_ghz)
        if exact is not None:
            return exact
        keys = sorted(self._unsafe)
        if not keys:
            return None
        key = _freq_key(frequency_ghz)
        lower = [k for k in keys if k < key]
        upper = [k for k in keys if k > key]
        candidates = []
        if lower:
            candidates.append(max(self._unsafe[lower[-1]]))
        if upper:
            candidates.append(max(self._unsafe[upper[0]]))
        return float(max(candidates))

    def is_unsafe(self, frequency_ghz: float, offset_mv: float) -> bool:
        """Algo 3, line 6: does (frequency, offset) lie in the unsafe set?

        A half-quantum tolerance absorbs the overclocking mailbox's
        1/1024 V resolution: an attacker's "-85 mV" request reads back as
        -84.96 mV, which must still match the -85 mV boundary cell.
        """
        boundary = self.effective_boundary_mv(frequency_ghz)
        if boundary is None:
            return False
        return offset_mv <= boundary + 0.5

    def safe_offset_mv(self, frequency_ghz: float, *, margin_mv: float = DEFAULT_SAFETY_MARGIN_MV) -> float:
        """Deepest offset still considered safe at a frequency.

        ``margin_mv`` backs off from the observed fault boundary to absorb
        measurement granularity and regulator overshoot.
        """
        if margin_mv < 0:
            raise ConfigurationError("margin must be non-negative")
        boundary = self.effective_boundary_mv(frequency_ghz)
        if boundary is None:
            return 0.0 if self.is_empty else self.maximal_safe_offset_mv(margin_mv=margin_mv)
        return min(boundary + margin_mv, 0.0)

    def maximal_safe_offset_mv(self, *, margin_mv: float = DEFAULT_SAFETY_MARGIN_MV) -> float:
        """The maximal safe state (Sec. 5).

        The deepest negative offset at which *no* characterized frequency
        faults: the shallowest per-frequency boundary plus the margin.
        This single value is what the microcode sequencer or the proposed
        ``MSR_VOLTAGE_OFFSET_LIMIT`` clamps against.

        Raises
        ------
        CharacterizationError
            If no unsafe cell was ever recorded (nothing to derive from).
        """
        if self.is_empty:
            raise CharacterizationError(
                "cannot derive a maximal safe state from an empty unsafe set"
            )
        shallowest = max(max(offsets) for offsets in self._unsafe.values())
        return min(float(shallowest) + margin_mv, 0.0)

    def cell_count(self) -> int:
        """Total number of recorded unsafe cells."""
        return sum(len(offsets) for offsets in self._unsafe.values())

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "system": self.system,
            "unsafe": {str(k): sorted(v) for k, v in self._unsafe.items()},
            "crash": {str(k): sorted(v) for k, v in self._crash.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnsafeStateSet":
        """Rebuild a set from :meth:`to_dict` output."""
        result = cls(system=data.get("system", "unknown"))
        for key, offsets in data.get("unsafe", {}).items():
            result._unsafe[int(key)] = set(int(o) for o in offsets)
        for key, offsets in data.get("crash", {}).items():
            result._crash[int(key)] = set(int(o) for o in offsets)
        return result

    def boundary_profile(self) -> List[Tuple[float, float]]:
        """(frequency GHz, boundary mV) pairs for plotting Figs. 2-4."""
        return [
            (ratio_to_ghz(key), float(max(self._unsafe[key])))
            for key in sorted(self._unsafe)
        ]
