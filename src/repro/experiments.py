"""Programmatic regeneration of the paper's experiments.

Every table and figure can be reproduced through one function call, so
downstream users can embed the experiments in their own pipelines
(notebooks, CI, parameter studies) without going through pytest.  The
benchmark targets under ``benchmarks/`` call these functions and add the
shape assertions and on-disk artifacts.

All heavy lifting is submitted through the campaign engine
(:mod:`repro.engine`): characterization sweeps are sharded into
per-frequency row jobs, attack campaigns and the SPEC overhead run are
self-contained job specs, and everything draws its randomness from named
seed streams keyed by job identity — so results are identical whether
the engine runs serial or across a process pool, and repeated calls are
served from the engine's result cache.

All functions are deterministic for a given seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attacks import (
    AttackOutcome,
    RSAKey,
    VoltJockeyAttack,
    VoltJockeyConfig,
)
from repro.bench.runner import OverheadReport
from repro.core import (
    CharacterizationResult,
    MicrocodeGuard,
    PollingCountermeasure,
    install_msr_clamp,
)
from repro.cpu import COMET_LAKE, PAPER_MODEL_TUPLE, CPUModel
from repro.engine import (
    AttackCampaignJob,
    EngineSession,
    OverheadJob,
    get_session,
    seed_stream,
)
from repro.testbench import Machine

#: Seed used by all canonical reproductions (matches the benchmarks).
CANONICAL_SEED = 5

#: Attack attempts per defense in the comparison harness.
COMPARISON_ATTEMPTS = 40

#: The attacks mounted per (CPU, defense) cell of the prevention matrix.
PREVENTION_ATTACKS = ("imul", "plundervolt", "v0ltpwn")

#: Victim secrets targeted by the prevention campaigns.  The values match
#: the :class:`~repro.engine.AttackCampaignJob` defaults (``rsa_key_seed``
#: and ``aes_key_hex``), so the recovered secrets in the matrix can be
#: checked against them.
PREVENTION_RSA_KEY = RSAKey.generate(512, seed=42)
PREVENTION_AES_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def characterization(
    model: CPUModel, *, seed: int = CANONICAL_SEED, batch: Optional[bool] = None
) -> CharacterizationResult:
    """Figs. 2-4: the full Algo 2 sweep for one CPU model.

    Served from the engine's result cache: repeated calls with the same
    (model, seed) return the *same object*.  ``clear_characterization_cache``
    (or ``get_session().clear_cache()``) resets it explicitly — the cache
    is bounded and never leaks across sessions the way the old
    module-global dict did.

    ``batch`` picks the sweep evaluator (vectorized fast path versus the
    scalar oracle; ``None`` defers to ``REPRO_BATCH``, default on) — a
    pure scheduling choice, the result and its cache slot are identical.
    """
    return get_session().characterize(model, seed=seed, batch=batch)


def clear_characterization_cache() -> None:
    """Explicitly drop every cached sweep (and campaign) result."""
    get_session().clear_cache()


def _unsafe_json(result: CharacterizationResult) -> str:
    """The characterized unsafe set as canonical JSON for job specs."""
    return json.dumps(result.unsafe_states.to_dict(), sort_keys=True)


def protected_machine(
    model: CPUModel, *, seed: int = 11, characterization_seed: int = CANONICAL_SEED
) -> Tuple[Machine, PollingCountermeasure]:
    """A machine with the polling countermeasure deployed."""
    machine_seed = seed_stream(
        seed, "experiments", "protected-machine", model.codename
    ).integer()
    machine = Machine.build(model, seed=machine_seed)
    module = PollingCountermeasure(
        machine, characterization(model, seed=characterization_seed).unsafe_states
    )
    machine.modules.insmod(module)
    return machine, module


def table2_overhead(*, seed: int = 3) -> OverheadReport:
    """Table 2: SPEC2017 overhead of the polling module on Comet Lake."""
    job = OverheadJob(
        codename=COMET_LAKE.codename,
        seed=seed,
        unsafe_json=_unsafe_json(characterization(COMET_LAKE)),
    )
    return get_session().run_job(job)


@dataclass
class PreventionCell:
    """One (CPU, defense, attack) cell of the prevention matrix."""

    codename: str
    protected: bool
    outcome: AttackOutcome


@dataclass
class PreventionMatrix:
    """The Sec. 4.3 evaluation across CPUs, defenses and attacks."""

    cells: List[PreventionCell] = field(default_factory=list)

    def outcomes(self, *, codename: Optional[str] = None, protected: Optional[bool] = None):
        """Filter cells by CPU and/or defense state."""
        selected = self.cells
        if codename is not None:
            selected = [c for c in selected if c.codename == codename]
        if protected is not None:
            selected = [c for c in selected if c.protected == protected]
        return selected

    @property
    def protected_faults(self) -> int:
        """Total victim faults across all protected cells (claim: 0)."""
        return sum(c.outcome.faults_observed for c in self.outcomes(protected=True))


def prevention_jobs(
    *, seed: int = 11, include_aes: bool = True, batch: Optional[bool] = None
) -> List[AttackCampaignJob]:
    """The Sec. 4.3 campaign expressed as engine job specs.

    One self-contained job per (CPU, defense state, attack): the
    characterized unsafe set travels inside protected specs, so the jobs
    can be sharded across worker processes (``repro campaign --workers``)
    and still reproduce the serial matrix byte for byte.  ``batch``
    selects the characterization sweep evaluator (see
    :func:`characterization`).
    """
    jobs: List[AttackCampaignJob] = []
    for model in PAPER_MODEL_TUPLE:
        result = characterization(model, batch=batch)
        base = model.frequency_table.base_ghz
        boundary = int(result.unsafe_states.boundary_mv(base))
        offsets = (
            boundary + 20, boundary - 5, boundary - 10,
            boundary - 15, boundary - 20, -300,
        )
        unsafe_json = _unsafe_json(result)
        attacks = list(PREVENTION_ATTACKS)
        if include_aes and model.codename == "Comet Lake":
            attacks.append("aes-dfa")
        for protected in (False, True):
            for attack in attacks:
                jobs.append(
                    AttackCampaignJob(
                        codename=model.codename,
                        attack=attack,
                        protected=protected,
                        seed=seed,
                        unsafe_json=unsafe_json if protected else None,
                        offsets_mv=offsets if attack == "imul" else None,
                        frequency_ghz=base,
                    )
                )
    return jobs


def prevention_matrix(
    *, seed: int = 11, include_aes: bool = True, session: Optional[EngineSession] = None
) -> PreventionMatrix:
    """Sec. 4.3: attack campaigns vs the polling module on all three CPUs."""
    session = session or get_session()
    jobs = prevention_jobs(seed=seed, include_aes=include_aes)
    outcomes = session.run_jobs(jobs)
    matrix = PreventionMatrix()
    for job, outcome in zip(jobs, outcomes):
        matrix.cells.append(PreventionCell(job.codename, job.protected, outcome))
    return matrix


@dataclass(frozen=True)
class DeploymentOutcome:
    """Adaptive frequency-jump attack vs one deployment depth."""

    deployment: str
    outcome: AttackOutcome


def maximal_safe_deployments(*, seed: int = 9) -> List[DeploymentOutcome]:
    """Sec. 5: the adaptive attack vs polling / microcode / MSR clamp."""
    result = characterization(COMET_LAKE)
    maximal = result.maximal_safe_offset_mv()
    cross_offset = int(result.unsafe_states.boundary_mv(3.4)) - 10
    outcomes = []
    for deployment in ("polling only", "polling + microcode (5.1)", "polling + MSR clamp (5.2)"):
        machine, _ = protected_machine(COMET_LAKE, seed=seed)
        if "microcode" in deployment:
            MicrocodeGuard(maximal).apply(machine.processor)
        elif "clamp" in deployment:
            install_msr_clamp(machine.processor, maximal)
        outcome = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(0.8, 3.4, offset_mv=cross_offset, repetitions=3),
        ).mount()
        outcomes.append(DeploymentOutcome(deployment, outcome))
    return outcomes


@dataclass
class DefenseComparison:
    """Sec. 1/4.1: the three philosophies measured on the same machine."""

    #: Access control: were the attack and the benign request blocked?
    sa00289_blocks_attack: bool = False
    sa00289_blocks_benign: bool = False
    #: Minefield: verdict counts without and with single-stepping.
    minefield_detected_plain: int = 0
    minefield_exploited_plain: int = 0
    minefield_detected_stepped: int = 0
    minefield_exploited_stepped: int = 0
    minefield_overhead: float = 0.0
    #: Polling: benign availability and the attack's applied end state.
    polling_benign_accepted: bool = False
    polling_benign_applied_mv: float = 0.0
    polling_attack_applied_mv: float = 0.0
    polling_overhead: float = 0.0


def defense_comparison(*, seed: int = 41, attempts: int = COMPARISON_ATTEMPTS) -> DefenseComparison:
    """Run the three-philosophy comparison (see the matching benchmark)."""
    from repro.defenses import AccessControlDefense, MinefieldDefense, WindowVerdict
    from repro.faults.injector import FaultInjector
    from repro.faults.margin import FaultModel
    from repro.sgx import EnclaveHost

    comparison = DefenseComparison()
    stream = seed_stream(seed, "experiments", "defense-comparison")

    # -- Intel SA-00289 ------------------------------------------------------
    machine = Machine.build(COMET_LAKE, seed=stream.child("sa00289").integer())
    host = EnclaveHost(machine)
    access = AccessControlDefense(machine, host)
    access.deploy()
    host.create_enclave("app")
    comparison.sa00289_blocks_attack = not machine.write_voltage_offset(-250)
    comparison.sa00289_blocks_benign = not machine.write_voltage_offset(-30)

    # -- Minefield -------------------------------------------------------------
    fault_model = FaultModel(COMET_LAKE)
    injector = FaultInjector(fault_model, stream.child("minefield").rng())
    vcrit = fault_model.critical_voltage(2.0)
    conditions = type(fault_model.conditions_for_offset(2.0, 0.0))(
        2.0, vcrit - 0.003, -999
    )
    minefield = MinefieldDefense(density=2.0, mine_sensitivity_boost=2.0)
    minefield.deploy()
    comparison.minefield_overhead = minefield.overhead_fraction()
    for stepped in (False, True):
        for _ in range(attempts):
            verdict = minefield.run_protected_window(
                injector, conditions, 500_000, single_stepped=stepped
            )
            if verdict is WindowVerdict.DETECTED:
                if stepped:
                    comparison.minefield_detected_stepped += 1
                else:
                    comparison.minefield_detected_plain += 1
            elif verdict is WindowVerdict.EXPLOITED:
                if stepped:
                    comparison.minefield_exploited_stepped += 1
                else:
                    comparison.minefield_exploited_plain += 1

    # -- Plug Your Volt (polling) -------------------------------------------------
    machine, module = protected_machine(COMET_LAKE, seed=seed)
    host = EnclaveHost(machine)
    host.create_enclave("app")
    comparison.polling_benign_accepted = machine.write_voltage_offset(-30)
    machine.advance(3e-3)
    comparison.polling_benign_applied_mv = machine.processor.core(0).applied_offset_mv(
        machine.now
    )
    machine.write_voltage_offset(-250)
    machine.advance(3e-3)
    comparison.polling_attack_applied_mv = machine.processor.core(0).applied_offset_mv(
        machine.now
    )
    comparison.polling_overhead = module.duty_cycle() / len(machine.processor.cores)
    return comparison
