"""The kernel MSR driver (``/dev/cpu/N/msr`` equivalent).

The paper's countermeasure uses "Intel's MSR memory mapped I/O interface"
through ioctl calls, and names the ioctl cost as one of the two
contributors to countermeasure turnaround time (Sec. 5, item 1).  The
driver therefore charges simulated time for every access when bound to a
simulator, in addition to forwarding to the architectural ``rdmsr`` /
``wrmsr`` of the processor.

Accounting: the driver tallies accesses and total time spent, which the
SPEC overhead harness uses to charge the polling module's CPU-time theft
against benchmark throughput (Table 2).  When a
:class:`~repro.telemetry.Telemetry` is bound, every access additionally
emits an ``msr.read``/``msr.write`` span whose duration is the ioctl
latency, and increments the ``msr.reads``/``msr.writes`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.processor import SimulatedProcessor
from repro.kernel.sim import Simulator
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class MSRAccessStats:
    """Counters for driver usage."""

    reads: int = 0
    writes: int = 0
    ignored_writes: int = 0
    busy_seconds: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.ignored_writes = 0
        self.busy_seconds = 0.0


@dataclass
class MSRDriver:
    """Synchronous MSR access with per-call ioctl latency.

    Parameters
    ----------
    processor:
        The simulated processor whose MSRs are exposed.
    simulator:
        Optional event simulator; when present, each access is *not*
        advanced on the global clock here (callers sleeping in tasks do
        that with :meth:`access_latency_s`) but the busy time is recorded.
    latency_s:
        Per-call latency; defaults to the CPU model's fused value.
    telemetry:
        Optional observability hook; disabled (no-op) by default.
    """

    processor: SimulatedProcessor
    simulator: Optional[Simulator] = None
    latency_s: Optional[float] = None
    stats: MSRAccessStats = field(default_factory=MSRAccessStats)
    telemetry: Optional[Telemetry] = None

    def __post_init__(self) -> None:
        if self.latency_s is None:
            self.latency_s = self.processor.model.msr_ioctl_latency_s
        telemetry = self.telemetry or NULL_TELEMETRY
        self._tracer = telemetry.tracer
        self._trace_on = telemetry.tracer.enabled
        self._reads_counter = telemetry.registry.counter("msr.reads")
        self._writes_counter = telemetry.registry.counter("msr.writes")

    @property
    def access_latency_s(self) -> float:
        """ioctl cost of one read or write, seconds."""
        assert self.latency_s is not None
        return self.latency_s

    def _now(self) -> float:
        """Current simulation time (0.0 when driven without a simulator)."""
        return self.simulator.now if self.simulator is not None else 0.0

    def read(self, core_index: int, address: int) -> int:
        """``rdmsr`` through the driver; charges ioctl latency."""
        self.stats.reads += 1
        self.stats.busy_seconds += self.access_latency_s
        self._reads_counter.inc()
        value = self.processor.rdmsr(core_index, address)
        if self._trace_on:
            self._tracer.complete(
                "msr.read",
                "msr",
                self._now(),
                self.access_latency_s,
                track=f"core{core_index}",
                address=f"0x{address:x}",
            )
        return value

    def write(self, core_index: int, address: int, value: int) -> bool:
        """``wrmsr`` through the driver; charges ioctl latency.

        Returns ``False`` when a microcode hook ignored the write.
        """
        self.stats.writes += 1
        self.stats.busy_seconds += self.access_latency_s
        self._writes_counter.inc()
        stored = self.processor.wrmsr(core_index, address, value)
        if not stored:
            self.stats.ignored_writes += 1
        if self._trace_on:
            self._tracer.complete(
                "msr.write",
                "msr",
                self._now(),
                self.access_latency_s,
                track=f"core{core_index}",
                address=f"0x{address:x}",
                stored=stored,
            )
        return stored
