"""CPU frequency scaling: governors and the ``cpupower`` utility.

Models the Linux ``cpufreq`` subsystem the paper leans on (Sec. 2.2): a
scaling driver exposes per-core policies with minimum/maximum limits and a
*governor* that picks the operating frequency; the ``cpupower`` utility
(Algo 2, line 9) is the userspace path the DVFS thread uses to set test
frequencies.

The frequency path ends at ``IA32_PERF_CTL`` on the simulated processor —
the same register real drivers program — so everything the countermeasure
later observes through ``IA32_PERF_STATUS`` is consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError, FrequencyError
from repro.cpu.msr import IA32_PERF_CTL
from repro.cpu.processor import SimulatedProcessor
from repro.units import ghz_to_ratio


class ScalingGovernor(enum.Enum):
    """The governors the simulated driver provides (Sec. 2.2)."""

    PERFORMANCE = "performance"
    POWERSAVE = "powersave"
    USERSPACE = "userspace"
    ONDEMAND = "ondemand"


@dataclass
class CPUFreqPolicy:
    """Per-core scaling policy (sysfs ``scaling_min/max_freq`` analogue)."""

    min_ghz: float
    max_ghz: float
    governor: ScalingGovernor = ScalingGovernor.ONDEMAND

    def clamp(self, frequency_ghz: float) -> float:
        """Restrict a frequency to the policy window."""
        return min(max(frequency_ghz, self.min_ghz), self.max_ghz)


class CPUFreqDriver:
    """The kernel scaling driver for one simulated processor."""

    def __init__(self, processor: SimulatedProcessor) -> None:
        self._processor = processor
        table = processor.model.frequency_table
        self.policies: Dict[int, CPUFreqPolicy] = {
            core.index: CPUFreqPolicy(min_ghz=table.min_ghz, max_ghz=table.max_ghz)
            for core in processor.cores
        }
        #: Every frequency transition requested through the driver,
        #: (core, GHz) — lets tests assert benign DVFS kept working.
        self.transition_log: List[tuple] = []

    @property
    def processor(self) -> SimulatedProcessor:
        """The processor the driver manages."""
        return self._processor

    def available_frequencies(self) -> List[float]:
        """The scaling_available_frequencies list (ascending GHz)."""
        return list(self._processor.model.frequency_table.frequencies_ghz())

    def set_governor(self, core_index: int, governor: ScalingGovernor) -> None:
        """Select a governor for one core and apply its static choice."""
        policy = self._policy(core_index)
        policy.governor = governor
        if governor is ScalingGovernor.PERFORMANCE:
            self._program(core_index, policy.max_ghz)
        elif governor is ScalingGovernor.POWERSAVE:
            self._program(core_index, policy.min_ghz)

    def set_policy_limits(self, core_index: int, *, min_ghz: float, max_ghz: float) -> None:
        """Adjust the policy window (``scaling_min/max_freq``)."""
        if min_ghz > max_ghz:
            raise ConfigurationError("policy min must not exceed max")
        table = self._processor.model.frequency_table
        policy = self._policy(core_index)
        policy.min_ghz = table.clamp(min_ghz)
        policy.max_ghz = table.clamp(max_ghz)

    def set_frequency(self, core_index: int, frequency_ghz: float) -> float:
        """Userspace-governor frequency request; returns the programmed GHz."""
        policy = self._policy(core_index)
        if policy.governor is not ScalingGovernor.USERSPACE:
            raise FrequencyError(
                "explicit frequency requires the userspace governor "
                f"(core {core_index} runs {policy.governor.value})"
            )
        return self._program(core_index, policy.clamp(frequency_ghz))

    def report_load(self, core_index: int, utilization: float) -> float:
        """Feed a load sample to the ondemand governor (0..1 utilization)."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must lie in [0, 1]")
        policy = self._policy(core_index)
        if policy.governor is not ScalingGovernor.ONDEMAND:
            return self._processor.core(core_index).frequency_ghz
        span = policy.max_ghz - policy.min_ghz
        target = policy.min_ghz + span * utilization
        return self._program(core_index, target)

    # -- internals --------------------------------------------------------------

    def _policy(self, core_index: int) -> CPUFreqPolicy:
        try:
            return self.policies[core_index]
        except KeyError:
            raise ConfigurationError(f"no policy for core {core_index}") from None

    def _program(self, core_index: int, frequency_ghz: float) -> float:
        table = self._processor.model.frequency_table
        frequency = table.clamp(frequency_ghz)
        ratio = ghz_to_ratio(frequency)
        self._processor.wrmsr(core_index, IA32_PERF_CTL, (ratio & 0xFF) << 8)
        self.transition_log.append((core_index, frequency))
        return frequency


class CPUPower:
    """Facade mimicking the ``cpupower`` utility used by Algo 2, line 9."""

    def __init__(self, driver: CPUFreqDriver) -> None:
        self._driver = driver

    def frequency_set(self, frequency_ghz: float, *, core_index: int | None = None) -> None:
        """``cpupower frequency-set -f <freq>``: pin core(s) to a frequency.

        Like the real tool, this switches the affected cores to the
        userspace governor first.
        """
        cores = (
            [core_index]
            if core_index is not None
            else [c.index for c in self._driver.processor.cores]
        )
        for index in cores:
            self._driver.set_governor(index, ScalingGovernor.USERSPACE)
            self._driver.set_frequency(index, frequency_ghz)

    def frequency_info(self, core_index: int = 0) -> dict:
        """``cpupower frequency-info`` essentials for one core."""
        core = self._driver.processor.core(core_index)
        policy = self._driver.policies[core_index]
        return {
            "current_ghz": core.frequency_ghz,
            "governor": policy.governor.value,
            "min_ghz": policy.min_ghz,
            "max_ghz": policy.max_ghz,
            "available": self._driver.available_frequencies(),
        }
