"""OS substrate: event simulator, kernel modules, MSR driver, cpufreq.

Provides the pieces of Linux the paper's countermeasure runs on: a
discrete-event timeline, a loadable-module framework whose load state can
feed SGX attestation, an MSR driver with ioctl latency, and the cpufreq
governor stack including the ``cpupower`` utility used by Algo 2.
"""

from repro.kernel.cpufreq import CPUFreqDriver, CPUFreqPolicy, CPUPower, ScalingGovernor
from repro.kernel.module import KernelModule, ModuleRegistry
from repro.kernel.msr_driver import MSRAccessStats, MSRDriver
from repro.kernel.procinfo import render_cpuinfo, render_system_status
from repro.kernel.sim import Event, RecurringEvent, Simulator, Task
from repro.kernel.sysfs import SysfsAttribute, SysfsDirectory, expose_polling_module
from repro.kernel.victim import ContinuousVictim, FaultBurst, VictimTrace

__all__ = [
    "CPUFreqDriver",
    "CPUFreqPolicy",
    "CPUPower",
    "ScalingGovernor",
    "KernelModule",
    "ModuleRegistry",
    "MSRAccessStats",
    "MSRDriver",
    "render_cpuinfo",
    "render_system_status",
    "Event",
    "RecurringEvent",
    "Simulator",
    "Task",
    "SysfsAttribute",
    "SysfsDirectory",
    "expose_polling_module",
    "ContinuousVictim",
    "FaultBurst",
    "VictimTrace",
]
