"""Discrete-event simulator.

Carries the temporal semantics the countermeasure's correctness argument
rests on: MSR ioctl latency, voltage-regulator settle time, polling
period and victim execution all live on one timeline, so the
"turnaround time" discussion of Sec. 5 is directly measurable.

Two scheduling styles are supported:

* callbacks — ``schedule(delay, fn)`` / ``schedule_recurring(period, fn)``;
* cooperative tasks — ``spawn(generator)`` where the generator yields the
  number of seconds to sleep before being resumed (a SimPy-style
  coroutine, used for the DVFS/EXECUTE/polling threads).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("callback", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class RecurringEvent:
    """Handle for a periodically re-armed callback."""

    def __init__(self, simulator: "Simulator", period: float, callback: Callable[[], None]) -> None:
        if period <= 0:
            raise SimulationError("recurring period must be positive")
        self._simulator = simulator
        self._period = period
        self._callback = callback
        self._cancelled = False
        self._current: Optional[Event] = None
        self.fire_count = 0
        self._arm()

    def _arm(self) -> None:
        self._current = self._simulator.schedule(self._period, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._callback()
        if not self._cancelled:
            self._arm()

    def cancel(self) -> None:
        """Stop future firings."""
        self._cancelled = True
        if self._current is not None:
            self._current.cancel()

    @property
    def period(self) -> float:
        """Interval between firings, seconds."""
        return self._period


#: A cooperative task body: yields sleep durations in seconds.
TaskBody = Generator[float, None, Any]


class Task:
    """A spawned cooperative task."""

    def __init__(self, simulator: "Simulator", body: TaskBody, name: str) -> None:
        self._simulator = simulator
        self._body = body
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._cancelled = False

    def cancel(self) -> None:
        """Stop resuming the task (it never runs again)."""
        self._cancelled = True
        self.done = True

    def _step(self) -> None:
        if self._cancelled or self.done:
            return
        try:
            delay = next(self._body)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            sim = self._simulator
            if sim._trace_on:
                sim._tracer.instant("task.done", "sim", sim.now, track="sim", task=self.name)
            return
        except BaseException as error:  # noqa: BLE001 - surfaced via .error
            self.done = True
            self.error = error
            raise
        if delay < 0:
            self.done = True
            self.error = SimulationError("task yielded a negative delay")
            raise self.error
        self._simulator.schedule(delay, self._step)


class Simulator:
    """Priority-queue discrete-event simulator with a monotone clock."""

    def __init__(self, *, telemetry: Optional[Telemetry] = None) -> None:
        self._now = 0.0
        self._heap: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self.processed_events = 0
        telemetry = telemetry or NULL_TELEMETRY
        self._tracer = telemetry.tracer
        self._trace_on = telemetry.tracer.enabled
        self._scheduled_counter = telemetry.registry.counter("sim.events_scheduled")
        self._processed_counter = telemetry.registry.counter("sim.events_processed")
        self._spawned_counter = telemetry.registry.counter("sim.tasks_spawned")
        # Optional runtime-invariant observer (repro.verify).  ``None`` means
        # the hot path pays a single identity comparison per event and
        # nothing else, keeping tier-1 timing byte-identical.
        self._observer: Optional[Any] = None
        # Optional dispatch-loop profiler (repro.observe) — same contract:
        # ``None`` costs one identity comparison per processed event.
        self._profiler: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def clock(self) -> Callable[[], float]:
        """A time-source callable for time-driven hardware components."""
        return lambda: self._now

    # -- observation -------------------------------------------------------------

    def attach_observer(self, observer: Any) -> None:
        """Install a runtime-invariant observer on the event loop.

        The observer receives ``after_step(sim, event_time)`` after each
        clock advance (before the event callback runs) and
        ``after_run_until(sim)`` once a :meth:`run_until` window completes.
        Only one observer may be attached at a time.
        """
        if self._observer is not None and self._observer is not observer:
            raise SimulationError("an observer is already attached to this simulator")
        self._observer = observer

    def detach_observer(self) -> None:
        """Remove the attached observer (no-op when none is attached)."""
        self._observer = None

    def attach_profiler(self, profiler: Any) -> None:
        """Install a dispatch-loop profiler on the event loop.

        The profiler receives ``after_event(callback, advanced_s,
        wall_s)`` after every event callback returns: the callback object
        (for site attribution), the simulated time the event advanced the
        clock by, and the callback's wall-clock cost.  Only one profiler
        may be attached at a time.
        """
        if self._profiler is not None and self._profiler is not profiler:
            raise SimulationError("a profiler is already attached to this simulator")
        self._profiler = profiler

    def detach_profiler(self) -> None:
        """Remove the attached profiler (no-op when none is attached)."""
        self._profiler = None

    def pending_entries(self) -> List[tuple]:
        """``(time, cancelled)`` snapshot of every entry still in the heap.

        Exists for heap-hygiene auditing (repro.verify) and tests; the
        returned list is a copy and mutating it does not affect the queue.
        """
        return [(entry.time, entry.event.cancelled) for entry in self._heap]

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        event = Event(self._now + delay, callback)
        heapq.heappush(self._heap, _QueueEntry(event.time, next(self._sequence), event))
        self._scheduled_counter.inc()
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at an absolute time (>= now)."""
        return self.schedule(time - self._now, callback)

    def schedule_recurring(self, period: float, callback: Callable[[], None]) -> RecurringEvent:
        """Run ``callback`` every ``period`` seconds until cancelled."""
        return RecurringEvent(self, period, callback)

    def spawn(self, body: TaskBody, *, name: str = "task") -> Task:
        """Start a cooperative task; its first step runs at the current time."""
        task = Task(self, body, name)
        self.schedule(0.0, task._step)
        self._spawned_counter.inc()
        if self._trace_on:
            self._tracer.instant("task.spawn", "sim", self._now, track="sim", task=name)
        return task

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False if the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            if entry.time < self._now:
                raise SimulationError("event queue produced a time in the past")
            if self._profiler is not None:
                self._profiled_dispatch(entry)
                return True
            self._now = entry.time
            self.processed_events += 1
            self._processed_counter.inc()
            if self._observer is not None:
                self._observer.after_step(self, entry.time)
            entry.event.callback()
            return True
        return False

    def _profiled_dispatch(self, entry: _QueueEntry) -> None:
        """The :meth:`step` dispatch body with profiler bookkeeping.

        Split out so the unprofiled hot path pays exactly one identity
        comparison; the sim-time fields handed to the profiler
        (``advanced_s``) are deterministic, the wall-clock measurement is
        not and the profiler keeps the two strictly apart.
        """
        advanced_s = entry.time - self._now
        self._now = entry.time
        self.processed_events += 1
        self._processed_counter.inc()
        if self._observer is not None:
            self._observer.after_step(self, entry.time)
        start = perf_counter()
        entry.event.callback()
        self._profiler.after_event(
            entry.event.callback, advanced_s, perf_counter() - start
        )

    def run_until(self, time: float) -> None:
        """Process events up to and including ``time``; clock ends at ``time``."""
        if time < self._now:
            raise SimulationError("cannot run into the past")
        while self._heap:
            head = self._heap[0]
            if head.event.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
        self._now = time
        # Stopping with a live head beyond ``time`` can strand cancelled
        # entries deeper in the heap; purge them so repeated run_until
        # calls against long-lived simulators cannot accumulate garbage.
        self._prune_cancelled()
        if self._observer is not None:
            self._observer.after_run_until(self)

    def prune(self) -> None:
        """Drop every cancelled entry still parked in the event heap.

        :meth:`run_until` does this automatically at the end of each
        window; quiescent-state audits (repro.verify) call it explicitly
        before asserting heap hygiene, because a cancellation issued
        after the last window legitimately leaves its entry parked until
        the next purge.
        """
        if any(entry.event.cancelled for entry in self._heap):
            self._heap = [e for e in self._heap if not e.event.cancelled]
            heapq.heapify(self._heap)

    # Historical private spelling, kept for callers/tests that grew
    # around it before the purge became part of the public contract.
    _prune_cancelled = prune

    def run(self, *, max_events: int = 10_000_000) -> None:
        """Drain the event queue entirely (bounded by ``max_events``)."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")

    def run_while(self, predicate: Callable[[], bool], *, max_events: int = 10_000_000) -> None:
        """Process events while ``predicate()`` holds and events remain."""
        processed = 0
        while predicate() and self.step():
            processed += 1
            if processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
