"""``/proc/cpuinfo``-style diagnostics for the simulated machine.

Operators of the real artifact sanity-check a deployment by reading
``/proc/cpuinfo``, ``lsmod`` and the module's sysfs tree; this module
renders the equivalent snapshot of a :class:`~repro.testbench.Machine` —
model identity, live microcode revision, per-core P-state/voltage, loaded
modules — in one string.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.testbench import Machine


def render_cpuinfo(machine: "Machine") -> str:
    """The per-core ``/proc/cpuinfo`` analogue."""
    model = machine.model
    blocks = []
    for core in machine.processor.cores:
        now = machine.now
        blocks.append(
            "\n".join(
                [
                    f"processor\t: {core.index}",
                    f"model name\t: {model.name}",
                    f"microcode\t: 0x{machine.processor.microcode_revision:x}",
                    f"cpu MHz\t\t: {core.frequency_ghz * 1000:.3f}",
                    f"core voltage\t: {core.effective_voltage(now) * 1e3:.1f} mV",
                    f"voltage offset\t: {core.applied_offset_mv(now):+.1f} mV "
                    f"(target {core.target_offset_mv():+.1f} mV)",
                    f"c-state\t\t: {core.pstate.c_state.name}",
                ]
            )
        )
    return "\n\n".join(blocks)


def render_system_status(machine: "Machine") -> str:
    """cpuinfo plus module list and driver counters — the full snapshot."""
    lines = [render_cpuinfo(machine), ""]
    modules = machine.modules.loaded_modules()
    lines.append("loaded modules\t: " + (", ".join(modules) if modules else "(none)"))
    stats = machine.msr_driver.stats
    lines.append(
        f"msr driver\t: {stats.reads} reads, {stats.writes} writes, "
        f"{stats.ignored_writes} ignored, {stats.busy_seconds * 1e6:.1f} us busy"
    )
    lines.append(f"uptime\t\t: {machine.now * 1e3:.3f} ms, "
                 f"crashes: {machine.crash_count}")
    return "\n".join(lines)
