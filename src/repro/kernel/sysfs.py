"""A sysfs-style runtime interface for kernel modules.

Real kernel modules expose parameters and statistics under
``/sys/module/<name>/parameters/``; administrators retune them without
reloading.  The simulated equivalent is a string-keyed attribute tree
with read/write permission bits, wired to live module state through
getter/setter callables.

:func:`expose_polling_module` publishes the paper's module: the polling
period is runtime-adjustable (the ablation benchmark shows why an
administrator might touch it), the policy and statistics are read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError, KernelModuleError


@dataclass
class SysfsAttribute:
    """One file under the module's sysfs directory."""

    name: str
    reader: Callable[[], str]
    writer: Optional[Callable[[str], None]] = None

    @property
    def writable(self) -> bool:
        """Whether the attribute accepts stores (mode 0644 vs 0444)."""
        return self.writer is not None


@dataclass
class SysfsDirectory:
    """``/sys/module/<name>`` for one module."""

    module_name: str
    _attributes: Dict[str, SysfsAttribute] = field(default_factory=dict)

    def add(self, attribute: SysfsAttribute) -> None:
        """Publish an attribute."""
        self._attributes[attribute.name] = attribute

    def ls(self) -> list:
        """Attribute names, sorted (the directory listing)."""
        return sorted(self._attributes)

    def read(self, name: str) -> str:
        """``cat`` an attribute."""
        try:
            return self._attributes[name].reader()
        except KeyError:
            raise KernelModuleError(
                f"no sysfs attribute {name!r} under {self.module_name}"
            ) from None

    def write(self, name: str, value: str) -> None:
        """``echo value >`` an attribute."""
        try:
            attribute = self._attributes[name]
        except KeyError:
            raise KernelModuleError(
                f"no sysfs attribute {name!r} under {self.module_name}"
            ) from None
        if attribute.writer is None:
            raise KernelModuleError(f"sysfs attribute {name!r} is read-only")
        attribute.writer(value)


def expose_polling_module(module) -> SysfsDirectory:
    """Publish a :class:`~repro.core.polling_module.PollingCountermeasure`.

    Attributes:

    * ``period_us``    (rw) — polling period; stores re-arm the kthread;
    * ``policy``       (ro) — active restoration policy name;
    * ``polls``        (ro) — loop iterations so far;
    * ``detections``   (ro) — unsafe states found;
    * ``remediations`` (ro) — corrective writes issued;
    * ``maximal_safe_mv`` (ro) — the Sec. 5 constant for this system.
    """
    directory = SysfsDirectory(module_name=module.name)

    def read_period() -> str:
        return f"{module.period_s * 1e6:.0f}"

    def write_period(value: str) -> None:
        try:
            period_us = float(value)
        except ValueError:
            raise ConfigurationError(f"invalid period {value!r}") from None
        if period_us <= 0:
            raise ConfigurationError("period must be positive")
        module.set_period(period_us * 1e-6)

    directory.add(SysfsAttribute("period_us", read_period, write_period))
    directory.add(SysfsAttribute("policy", lambda: module.policy.name))
    directory.add(SysfsAttribute("polls", lambda: str(module.stats.polls)))
    directory.add(SysfsAttribute("detections", lambda: str(module.stats.detections)))
    directory.add(
        SysfsAttribute("remediations", lambda: str(len(module.stats.remediations)))
    )
    directory.add(
        SysfsAttribute(
            "maximal_safe_mv",
            lambda: f"{module.unsafe_states.maximal_safe_offset_mv():.0f}",
        )
    )
    return directory
