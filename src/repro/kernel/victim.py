"""A continuously executing victim thread on the event timeline.

The paper's EXECUTE thread runs "in parallel to the DVFS thread without
blocking" (Sec. 4.2).  :class:`ContinuousVictim` is that thread as a
cooperative simulator task: it executes ``imul`` chunks back to back,
sampling the core's live conditions at each chunk start, accumulating a
fault (and crash) record with timestamps.

Because the victim occupies the timeline *between* attacker writes and
defender polls, it observes exactly the windows that matter: if an
unsafe voltage is ever electrically effective while a chunk retires,
faults appear in the trace — a strictly more honest probe than running
discrete windows after explicit ``advance()`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from typing import TYPE_CHECKING

from repro.errors import MachineCheckError
from repro.faults.margin import INSTRUCTION_SENSITIVITY
from repro.kernel.sim import Task

if TYPE_CHECKING:  # avoid a circular import through the kernel package
    from repro.testbench import Machine


@dataclass(frozen=True)
class FaultBurst:
    """Faults observed in one victim chunk."""

    time_s: float
    frequency_ghz: float
    offset_mv: float
    fault_count: int


@dataclass
class VictimTrace:
    """Everything the victim observed over its lifetime."""

    chunks: int = 0
    ops: int = 0
    total_faults: int = 0
    crashes: int = 0
    bursts: List[FaultBurst] = field(default_factory=list)

    def fault_windows(self) -> List[FaultBurst]:
        """Only the chunks where faults landed."""
        return [b for b in self.bursts if b.fault_count > 0]


class ContinuousVictim:
    """Spawns an endless imul loop on the machine's simulator.

    Parameters
    ----------
    machine:
        The simulated system.
    core_index:
        Core the victim is pinned to.
    chunk_ops:
        Instructions per chunk; the chunk duration is the victim's
        sampling resolution for condition changes.
    instruction:
        Dominant instruction class of the victim loop.
    survive_crashes:
        If true, a machine check reboots the box and the victim resumes
        (the characterization robot's behaviour); if false the victim
        stops at the first crash.
    """

    def __init__(
        self,
        machine: "Machine",
        *,
        core_index: int = 0,
        chunk_ops: int = 100_000,
        instruction: str = "imul",
        survive_crashes: bool = True,
    ) -> None:
        if instruction not in INSTRUCTION_SENSITIVITY:
            raise ValueError(f"unknown instruction {instruction!r}")
        self._machine = machine
        self._core_index = core_index
        self._chunk_ops = chunk_ops
        self._instruction = instruction
        self._survive_crashes = survive_crashes
        self.trace = VictimTrace()
        self._task: Optional[Task] = None

    @property
    def running(self) -> bool:
        """Whether the victim task is live on the simulator."""
        return self._task is not None and not self._task.done

    def start(self) -> None:
        """Spawn the victim loop."""
        self._task = self._machine.simulator.spawn(self._body(), name="execute-thread")

    def stop(self) -> None:
        """Cancel the victim loop."""
        if self._task is not None:
            self._task.cancel()

    # -- the loop body -----------------------------------------------------------

    def _body(self):
        machine = self._machine
        while True:
            conditions = machine.conditions(self._core_index)
            duration = self._chunk_ops / (conditions.frequency_ghz * 1e9)
            try:
                outcome = machine.injector.run_window(
                    conditions, self._chunk_ops, instruction=self._instruction
                )
            except MachineCheckError:
                self.trace.crashes += 1
                machine.processor.reboot()
                machine.crash_count += 1
                if not self._survive_crashes:
                    return self.trace
                yield 50e-3  # reboot time before execution resumes
                continue
            self.trace.chunks += 1
            self.trace.ops += outcome.ops
            if outcome.fault_count:
                self.trace.total_faults += outcome.fault_count
                self.trace.bursts.append(
                    FaultBurst(
                        time_s=machine.now,
                        frequency_ghz=conditions.frequency_ghz,
                        offset_mv=conditions.offset_mv,
                        fault_count=outcome.fault_count,
                    )
                )
            yield duration
