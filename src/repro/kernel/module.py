"""Loadable kernel-module framework.

The countermeasure "resides as a kernel module" (Sec. 4.3); the threat
model explicitly allows the (privileged) adversary to load and unload
modules, and counters that by folding the module's load state into the
SGX attestation report (Sec. 4.1, "Note on adversarial control over
unloading kernel modules").  The :class:`ModuleRegistry` is what the
attestation layer consults.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import KernelModuleError


class KernelModule(ABC):
    """Base class for loadable modules."""

    #: Module name as it would appear in ``lsmod``.
    name: str = "module"

    def __init__(self) -> None:
        self._loaded = False

    @property
    def loaded(self) -> bool:
        """Whether the module is currently inserted."""
        return self._loaded

    @abstractmethod
    def on_load(self) -> None:
        """Module init routine — start threads, install hooks."""

    @abstractmethod
    def on_unload(self) -> None:
        """Module exit routine — stop threads, remove hooks."""


@dataclass
class ModuleRegistry:
    """Tracks inserted modules (the simulated ``lsmod`` view).

    The load/unload history is kept so experiments can show an adversary
    unloading the countermeasure and attestation subsequently failing.
    """

    _modules: Dict[str, KernelModule] = field(default_factory=dict)
    history: List[Tuple[float, str, str]] = field(default_factory=list)

    def insmod(self, module: KernelModule, now: float = 0.0) -> None:
        """Insert a module; runs its init routine."""
        if module.name in self._modules:
            raise KernelModuleError(f"module {module.name!r} already loaded")
        module.on_load()
        module._loaded = True
        self._modules[module.name] = module
        self.history.append((now, "insmod", module.name))

    def rmmod(self, name: str, now: float = 0.0) -> KernelModule:
        """Remove a module by name; runs its exit routine."""
        try:
            module = self._modules.pop(name)
        except KeyError:
            raise KernelModuleError(f"module {name!r} not loaded") from None
        module.on_unload()
        module._loaded = False
        self.history.append((now, "rmmod", name))
        return module

    def is_loaded(self, name: str) -> bool:
        """Whether a module with this name is inserted."""
        return name in self._modules

    def loaded_modules(self) -> List[str]:
        """Names of all inserted modules, sorted."""
        return sorted(self._modules)

    def get(self, name: str) -> KernelModule:
        """Fetch a loaded module by name."""
        try:
            return self._modules[name]
        except KeyError:
            raise KernelModuleError(f"module {name!r} not loaded") from None
