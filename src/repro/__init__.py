"""Reproduction of "Plug Your Volt: Protecting Intel Processors against
Dynamic Voltage Frequency Scaling based Fault Attacks" (DAC 2024).

The package implements the paper's countermeasure — safe/unsafe system
state characterization plus a polling kernel module — together with every
substrate it needs: a simulated Intel processor (MSRs, overclocking
mailbox, voltage regulator, P-states), the circuit-timing physics of
Eq. 1-3, a discrete-event OS layer, SGX enclaves with attestation and
stepping, the published attacks (Plundervolt, VoltJockey, V0LTpwn), the
baseline defenses (Intel SA-00289 access control, Minefield deflection),
and a SPEC2017-style overhead harness.

Quick start::

    from repro import Machine, COMET_LAKE
    from repro.core import CharacterizationFramework, PollingCountermeasure

    unsafe = CharacterizationFramework(COMET_LAKE).run().unsafe_states
    machine = Machine.build(COMET_LAKE, seed=1)
    machine.modules.insmod(PollingCountermeasure(machine, unsafe))

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from repro.cpu import COMET_LAKE, KABY_LAKE_R, PAPER_MODEL_TUPLE, SKY_LAKE, CPUModel
from repro.errors import ReproError
from repro.testbench import Machine

__version__ = "1.0.0"

__all__ = [
    "COMET_LAKE",
    "KABY_LAKE_R",
    "PAPER_MODEL_TUPLE",
    "SKY_LAKE",
    "CPUModel",
    "ReproError",
    "Machine",
    "__version__",
]
