"""Unit helpers.

The codebase uses a small set of canonical units so values never have to be
guessed from context:

* time      — seconds (``float``) inside the simulator; helpers convert
  from micro/milli/nanoseconds.
* frequency — gigahertz (``float``) at API boundaries; the MSR layer uses
  the hardware *ratio* representation (multiples of the 100 MHz bus clock).
* voltage   — volts (``float``) in the physics model; the MSR layer uses
  hardware fixed-point encodings (1/1024 V for the 0x150 offset field and
  1/8192 V for the 0x198 voltage readout).

Keeping the conversions in one module makes the bit-level codecs in
:mod:`repro.core.encoding` easy to audit against Table 1 of the paper.
"""

from __future__ import annotations

#: Intel bus ("BCLK") reference clock used by the P-state ratio, in GHz.
BUS_CLOCK_GHZ = 0.1

#: Resolution of the MSR 0x150 voltage-offset field: units of 1/1024 V.
OCM_VOLT_UNITS_PER_VOLT = 1024

#: Resolution of the IA32_PERF_STATUS voltage field: units of 1/8192 V.
PERF_STATUS_UNITS_PER_VOLT = 8192


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def ghz_to_ratio(frequency_ghz: float) -> int:
    """Convert a core frequency in GHz to the hardware P-state ratio.

    The ratio is the multiple of the 100 MHz bus clock, i.e. 3.2 GHz has
    ratio 32.  Frequencies are rounded to the nearest ratio.
    """
    return int(round(frequency_ghz / BUS_CLOCK_GHZ))


def ratio_to_ghz(ratio: int) -> float:
    """Convert a hardware P-state ratio to a frequency in GHz."""
    return ratio * BUS_CLOCK_GHZ


def mv_to_volts(millivolts: float) -> float:
    """Convert millivolts to volts."""
    return millivolts * 1e-3


def volts_to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return volts * 1e3


def clock_period_seconds(frequency_ghz: float) -> float:
    """Return ``T_clk`` in seconds for a core frequency in GHz (Eq. 1)."""
    if frequency_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return 1e-9 / frequency_ghz


def clock_period_ps(frequency_ghz: float) -> float:
    """Return ``T_clk`` in picoseconds for a core frequency in GHz."""
    return clock_period_seconds(frequency_ghz) * 1e12
