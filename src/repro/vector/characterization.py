"""The vectorized Algo 2 row: numpy fast path, byte-identical cells.

:func:`run_row_batch` reproduces
:meth:`repro.core.characterization.CharacterizationFramework.run_row`
exactly — same :class:`~repro.core.unsafe_states.CellResult` list, same
telemetry counter totals, same trace events, same random stream
consumption — while evaluating the physics for the whole offset row in
three vectorized phases instead of ~300 scalar object pipelines:

1. ``vector.delay`` — the factory V/f curve over the offset array plus
   the one critical-voltage bisection the row needs (cached per
   frequency by the fault model, exactly as in the scalar path);
2. ``vector.safety`` — violated fraction, per-op fault probability and
   crash verdict for every offset at once (:func:`repro.vector.kernels.fault_grid`);
3. ``vector.fault_draw`` — the sequential seeded draws.

Phase 3 is the reason byte-identity is cheap: the scalar fault injector
consumes random state *only* for windows with a non-zero fault
probability (a crash raises before any draw, and safe cells skip the
binomial entirely), so the generator stream the scalar path threads
through a row touches only the narrow fault band — typically a few dozen
cells out of three hundred.  Replaying exactly those draws — one
``binomial(ops, p)`` per faultable window, then per faulting window one
``choice(ops, size=min(count, 16), replace=False)`` and ``min(count, 16)``
single ``integers(0, 64)`` bit picks — on the row's named seed stream
reproduces the scalar cells bit for bit without materialising any
``WindowOutcome``/``ImulRunReport``/``FaultEvent`` objects.

The draw structure above mirrors ``FaultInjector.run_window`` +
``ImulLoop.run``; the scalar-vs-vector fuzz suite
(``tests/test_vector_identity.py``) is the executable proof that it stays
in lockstep.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

import numpy as np

from repro.core.unsafe_states import CellResult
from repro.faults.margin import FaultModel
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.vector.kernels import effective_voltage_grid, fault_grid
from repro.vector.profile import record_kernel_site

#: Mirrors the ``max_recorded_events`` default of
#: :class:`repro.faults.injector.FaultInjector` — the cap on concrete
#: bit-flip events (and hence per-window ``integers(0, 64)`` draws) the
#: scalar path materialises.  Guarded by the identity suite.
MAX_RECORDED_EVENTS = 16



def run_row_batch(
    framework, frequency_ghz: float, *, telemetry: Optional[Telemetry] = None
) -> List[CellResult]:
    """Probe one frequency row on the vectorized fast path.

    ``framework`` is a
    :class:`~repro.core.characterization.CharacterizationFramework`;
    the returned cells, the telemetry counters and the consumed random
    stream are byte-identical to ``framework.run_row(frequency_ghz)``.
    """
    config = framework.config
    # One FaultModel per framework, shared across its rows: the model is
    # pure (its V/f-curve and critical-voltage caches memoise bisection
    # results, never randomness), so reuse cannot change results — it
    # only avoids re-deriving the factory curve for every row.  The
    # scalar path deliberately keeps its per-row construction: it is the
    # oracle and stays exactly as it always ran.
    fault_model = getattr(framework, "_vector_fault_model", None)
    if fault_model is None:
        fault_model = FaultModel(framework.model)
        framework._vector_fault_model = fault_model
    telemetry = telemetry or NULL_TELEMETRY
    tracer = telemetry.tracer
    trace_on = tracer.enabled
    windows_counter = telemetry.registry.counter("faults.windows")
    injected_counter = telemetry.registry.counter("faults.injected")
    crashes_counter = telemetry.registry.counter("faults.crashes")

    offsets = config.offsets_mv()

    started = perf_counter()
    voltages = effective_voltage_grid(
        fault_model.vf_curve, frequency_ghz, offsets
    )
    # One scalar bisection per row (the fault model caches it per
    # frequency/temperature) — the only non-elementwise physics a row needs.
    fault_model.critical_voltage(frequency_ghz)
    record_kernel_site(
        "vector.delay", events=len(offsets), wall_s=perf_counter() - started
    )

    started = perf_counter()
    grid = fault_grid(fault_model, frequency_ghz, voltages, instruction="imul")
    record_kernel_site(
        "vector.safety", events=len(offsets), wall_s=perf_counter() - started
    )

    started = perf_counter()
    rng = framework.row_stream(frequency_ghz).rng()
    iterations = config.iterations
    # The safe prefix of a row — every offset before the first cell with a
    # non-zero fault probability or a crash verdict — consumes no random
    # state at all in the scalar path (run_window only counts the window),
    # so its cells can be built in one comprehension.  The draw loop below
    # then starts at the fault band.
    active = (grid.fault_probability > 0.0) | grid.crash
    first = int(np.argmax(active)) if bool(active.any()) else len(offsets)
    # Python lists beat per-cell numpy scalar extraction in the fold loop,
    # and .tolist() yields the exact float/bool values the arrays hold.
    crash = grid.crash.tolist()
    probability = grid.fault_probability.tolist()
    cells: List[CellResult] = [
        CellResult(frequency_ghz, offset, fault_count=0, crashed=False)
        for offset in offsets[:first]
    ]
    windows = first * config.repetitions
    injected = 0
    crashes = 0
    for index in range(first, len(offsets)):
        offset = offsets[index]
        if crash[index]:
            # The scalar injector counts the window, traces the crash and
            # raises MachineCheckError *before* any random draw; the
            # framework records a crash cell and (by default) ends the row.
            windows += 1
            crashes += 1
            if trace_on:
                tracer.instant(
                    "fault.crash", "fault", 0.0, track="faults",
                    frequency_ghz=frequency_ghz,
                    offset_mv=offset,
                )
            cells.append(
                CellResult(frequency_ghz, offset, fault_count=0, crashed=True)
            )
            if config.stop_after_crash:
                break
            continue
        p = probability[index]
        fault_count = 0
        for _ in range(config.repetitions):
            windows += 1
            count = 0
            if p > 0.0:  # iterations > 0 is a config invariant
                count = int(rng.binomial(iterations, p))
            if count:
                injected += count
                if trace_on:
                    tracer.instant(
                        "fault.injection", "fault", 0.0, track="faults",
                        ops=iterations,
                        fault_count=count,
                        instruction="imul",
                        frequency_ghz=frequency_ghz,
                        offset_mv=offset,
                    )
                recorded = min(count, MAX_RECORDED_EVENTS)
                # The drawn fault positions are never stored in a
                # CellResult, but the call must be replayed verbatim: its
                # bit-generator consumption (including the 32-bit
                # half-word carry buffer) is internal to numpy and cannot
                # be imitated by cheaper draws.
                rng.choice(iterations, size=recorded, replace=False)
                # One bounded-integer array draw consumes bit-generator
                # state identically to `recorded` scalar integers(0, 64)
                # calls (including the 32-bit half-word carry buffer) —
                # the identity suite pins this equivalence.
                rng.integers(0, 64, size=recorded)
            fault_count += count
        cells.append(CellResult(frequency_ghz, offset, fault_count, crashed=False))
    windows_counter.inc(windows)
    if injected:
        injected_counter.inc(injected)
    if crashes:
        crashes_counter.inc(crashes)
    record_kernel_site(
        "vector.fault_draw", events=windows, wall_s=perf_counter() - started
    )
    return cells
