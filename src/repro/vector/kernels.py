"""Bit-exact numpy grid kernels over the timing and fault physics.

Every kernel here evaluates one of the scalar model functions —
:meth:`repro.timing.delay_model.DelayModel.raw_delay` / ``scale``,
:class:`repro.timing.safety.TimingBudget` and the safe/critical/crash
predicates, :meth:`repro.faults.margin.FaultModel.violated_fraction` /
``fault_probability`` / ``is_crash`` — over arrays of operating points in
one call, with **bit-identical** results.  The scalar implementations are
the oracle; the vector path is an execution strategy, never an
approximation (see ``docs/faithfulness.md``).

Two deliberate implementation choices make bitwise equality hold:

* **No numpy ``pow``.**  numpy's SIMD ``float64 ** float64`` is *not*
  bit-identical to CPython's libm-backed ``**`` (measured: ~8 % of values
  differ in the last ulp on this grid's voltage range).  Exponentiation
  therefore goes through :func:`pow_elementwise`, which applies CPython
  float ``**`` element by element — numpy arrays in and out, libm-exact
  semantics inside.  Elementwise add/sub/mul/div and the clamping
  ``minimum``/``maximum`` *are* bit-identical in numpy and are used
  directly.
* **No numpy ``erf``.**  numpy has none; the standard-normal CDF of
  :func:`repro.faults.margin._phi` is applied via ``math.erf`` element by
  element in :func:`phi_grid`.

The scalar model signals impossible operating points by raising
``ConfigurationError`` (sub-threshold supply in ``raw_delay``, exhausted
timing budget in ``budget_for``, unreachable scale in
``voltage_for_scale``).  A grid cannot raise per point, so every kernel
returns a :class:`MaskedGrid`: invalid points carry ``NaN`` values and
``valid=False``, and the safety grid folds them into ``unsafe=True`` —
a gate that does not switch is the *most* unsafe operating point, not an
error (see the boundary-semantics tests in
``tests/test_vector_kernels.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.margin import (
    BASE_FAULT_RATE_PER_OP,
    INSTRUCTION_SENSITIVITY,
    ONSET_FRACTION,
    FaultModel,
)
from repro.timing.constants import ProcessCharacteristics
from repro.timing.delay_model import DelayModel
from repro.timing.path import CriticalPath
from repro.timing.safety import budget_for

ArrayLike = Union[float, int, np.ndarray, list, tuple]


# -- elementwise-exact primitives ------------------------------------------------


def pow_elementwise(base: ArrayLike, exponent: float) -> np.ndarray:
    """CPython float ``**`` applied per element (bit-identical to scalar).

    Callers must pass strictly positive bases (the scalar model raises
    before exponentiating a non-positive overdrive; grid code masks those
    points out first).
    """
    array = np.asarray(base, dtype=np.float64)
    flat = array.ravel()
    out = np.fromiter(
        (value ** exponent for value in flat.tolist()),
        dtype=np.float64,
        count=flat.size,
    )
    return out.reshape(array.shape)


def phi_grid(z: ArrayLike) -> np.ndarray:
    """Standard normal CDF per element, bit-identical to ``margin._phi``."""
    array = np.asarray(z, dtype=np.float64)
    flat = array.ravel()
    sqrt2 = math.sqrt(2.0)
    out = np.fromiter(
        (0.5 * (1.0 + math.erf(value / sqrt2)) for value in flat.tolist()),
        dtype=np.float64,
        count=flat.size,
    )
    return out.reshape(array.shape)


# -- result containers -----------------------------------------------------------


@dataclass(frozen=True)
class MaskedGrid:
    """A grid of values with an explicit validity mask.

    ``values`` holds ``NaN`` wherever ``valid`` is false — the batch-path
    encoding of the scalar path's per-point ``ConfigurationError``.
    """

    values: np.ndarray
    valid: np.ndarray


@dataclass(frozen=True)
class BudgetGrid:
    """Eq. 1 right-hand sides for a grid of frequencies."""

    slack_budget_ps: np.ndarray
    t_clk_ps: np.ndarray
    valid: np.ndarray


@dataclass(frozen=True)
class SafetyGrid:
    """Eq. 2/3 verdicts for a grid of (frequency, voltage[, T]) points.

    Sub-threshold (and otherwise impossible) points carry
    ``path_delay_ps=NaN``, ``valid=False`` and are classified
    ``unsafe=True`` — matching the physics: a supply at or below the
    threshold voltage cannot latch correct data.
    """

    path_delay_ps: np.ndarray
    slack_budget_ps: np.ndarray
    slack_ps: np.ndarray
    safe: np.ndarray
    unsafe: np.ndarray
    valid: np.ndarray


@dataclass(frozen=True)
class FaultGrid:
    """Fault-model outputs for one frequency over a voltage array."""

    violated_fraction: np.ndarray
    fault_probability: np.ndarray
    crash: np.ndarray


@dataclass(frozen=True)
class FeasibilityGrid:
    """Explorer verdicts for one frequency over an offset array.

    ``safe`` means *provably* fault-free for every listed instruction
    class and not past the crash boundary — the tier-1 prune of
    :mod:`repro.explore`.  ``fault_probability`` is the maximum over the
    instruction classes (the most sensitive one dominates feasibility).
    """

    voltage_volts: np.ndarray
    fault_probability: np.ndarray
    crash: np.ndarray
    safe: np.ndarray


# -- timing kernels (delay model / critical path) --------------------------------


def _broadcast(
    *arrays: ArrayLike,
) -> tuple:
    """Broadcast inputs to float64 arrays of a common shape."""
    return np.broadcast_arrays(
        *(np.asarray(a, dtype=np.float64) for a in arrays)
    )


def raw_delay_grid(
    process: ProcessCharacteristics,
    voltage_volts: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
) -> MaskedGrid:
    """``DelayModel.raw_delay`` over (V[, T]) arrays.

    Scalar semantics: ``d(V, T) = (T/T_ref)^mu * V / (V - Vth(T))^alpha``,
    raising ``ConfigurationError`` when the overdrive ``V - Vth(T)`` is
    non-positive.  Here those points come back as ``NaN`` with
    ``valid=False`` instead.
    """
    if temperature_c is None:
        temperature_c = process.reference_temperature_c
    voltage, temperature = _broadcast(voltage_volts, temperature_c)
    shape = voltage.shape
    voltage = voltage.ravel()
    temperature = temperature.ravel()
    vth = process.vth_volts + process.vth_temp_coeff_v_per_c * (
        temperature - process.reference_temperature_c
    )
    overdrive = voltage - vth
    valid = overdrive > 0.0
    values = np.full(voltage.shape, np.nan)
    if valid.any():
        kelvin_ratio = (temperature[valid] + 273.15) / (
            process.reference_temperature_c + 273.15
        )
        mobility = pow_elementwise(kelvin_ratio, process.mobility_temp_exponent)
        values[valid] = (
            mobility
            * voltage[valid]
            / pow_elementwise(overdrive[valid], process.alpha)
        )
    return MaskedGrid(values=values.reshape(shape), valid=valid.reshape(shape))


def scale_grid(
    process: ProcessCharacteristics,
    voltage_volts: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
) -> MaskedGrid:
    """``DelayModel.scale`` over (V[, T]) arrays (reference-normalised)."""
    reference = DelayModel(process).raw_delay(process.reference_voltage_volts)
    raw = raw_delay_grid(process, voltage_volts, temperature_c)
    return MaskedGrid(values=raw.values / reference, valid=raw.valid)


def path_delay_grid(
    path: CriticalPath,
    voltage_volts: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
) -> MaskedGrid:
    """``CriticalPath.delay_at`` (ps) over (V[, T]) arrays."""
    scaled = scale_grid(path.process, voltage_volts, temperature_c)
    return MaskedGrid(
        values=path.nominal_delay_ps * scaled.values, valid=scaled.valid
    )


def timing_budget_grid(
    process: ProcessCharacteristics, frequency_ghz: ArrayLike
) -> BudgetGrid:
    """``budget_for`` over a frequency array.

    Frequencies whose budget is non-positive (the scalar
    ``ConfigurationError``) come back invalid.  Budgets are evaluated
    through the scalar function itself — the frequency axis is short, and
    reusing the exact code path is what guarantees identity.
    """
    array = np.asarray(frequency_ghz, dtype=np.float64)
    shape = array.shape
    flat = array.ravel()
    slack = np.full(flat.shape, np.nan)
    t_clk = np.full(flat.shape, np.nan)
    valid = np.zeros(flat.shape, dtype=bool)
    for index, frequency in enumerate(flat.tolist()):
        try:
            budget = budget_for(frequency, process)
        except ConfigurationError:
            continue
        slack[index] = budget.slack_budget_ps
        t_clk[index] = budget.t_clk_ps
        valid[index] = True
    return BudgetGrid(
        slack_budget_ps=slack.reshape(shape),
        t_clk_ps=t_clk.reshape(shape),
        valid=valid.reshape(shape),
    )


def safety_grid(
    path: CriticalPath,
    frequency_ghz: ArrayLike,
    voltage_volts: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
) -> SafetyGrid:
    """Eq. 1-3 over broadcast (f, V[, T]) arrays.

    Matches ``SafetyAnalyzer.operating_point``/``is_safe`` pointwise on
    valid points; invalid points (sub-threshold voltage, exhausted
    budget) are ``unsafe=True`` with ``NaN`` delay and slack.
    """
    if temperature_c is None:
        temperature_c = path.process.reference_temperature_c
    frequency, voltage, temperature = _broadcast(
        frequency_ghz, voltage_volts, temperature_c
    )
    budget = timing_budget_grid(path.process, frequency)
    delay = path_delay_grid(path, voltage, temperature)
    valid = budget.valid & delay.valid
    slack = budget.slack_budget_ps - delay.values
    safe = valid & (slack >= 0.0)
    return SafetyGrid(
        path_delay_ps=delay.values,
        slack_budget_ps=budget.slack_budget_ps,
        slack_ps=slack,
        safe=safe,
        unsafe=~safe,
        valid=valid,
    )


# -- inverse kernels (critical / crash voltage) ----------------------------------


def _scale_exact(
    process: ProcessCharacteristics,
    voltage: np.ndarray,
    vth: np.ndarray,
    mobility: np.ndarray,
    reference: float,
) -> np.ndarray:
    """``DelayModel.scale`` for in-bracket bisection lanes (overdrive > 0)."""
    overdrive = voltage - vth
    return (
        mobility * voltage / pow_elementwise(overdrive, process.alpha)
    ) / reference


def voltage_for_scale_grid(
    process: ProcessCharacteristics,
    target_scale: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
    *,
    v_lo: Optional[float] = None,
    v_hi: float = 2.5,
    tolerance: float = 1e-9,
) -> MaskedGrid:
    """``DelayModel.voltage_for_scale`` over target/temperature arrays.

    Runs one bisection per lane, but every lane follows the scalar
    bisection's trajectory *exactly*: the same ``0.5 * (lo + hi)``
    midpoints, the same ``scale(mid) > target`` branch, the same
    ``hi - lo > tolerance`` stop — so the converged voltage is
    bit-identical to the scalar solver's.  Lanes the scalar would reject
    (non-positive target, scale unreachable below ``v_hi``, bracket below
    threshold) are masked invalid.
    """
    if temperature_c is None:
        temperature_c = process.reference_temperature_c
    targets, temperature = _broadcast(target_scale, temperature_c)
    shape = targets.shape
    targets = targets.ravel()
    temperature = temperature.ravel()
    vth = process.vth_volts + process.vth_temp_coeff_v_per_c * (
        temperature - process.reference_temperature_c
    )
    # Per-lane constants of scale(): the mobility factor depends only on
    # the lane temperature and the reference denominator only on the
    # process — both are recomputed per call in the scalar model but are
    # pure, so hoisting them preserves every evaluated value.
    kelvin_ratio = (temperature + 273.15) / (
        process.reference_temperature_c + 273.15
    )
    mobility = pow_elementwise(kelvin_ratio, process.mobility_temp_exponent)
    reference = DelayModel(process).raw_delay(process.reference_voltage_volts)

    lo = vth + 1e-6 if v_lo is None else np.full(targets.shape, float(v_lo))
    hi = np.full(targets.shape, float(v_hi))
    valid = (targets > 0.0) & (lo > vth) & (hi > vth)
    if valid.any():
        unreachable = np.zeros(targets.shape, dtype=bool)
        unreachable[valid] = (
            _scale_exact(
                process, hi[valid], vth[valid], mobility[valid], reference
            )
            > targets[valid]
        )
        valid &= ~unreachable
    active = valid & (hi - lo > tolerance)
    while active.any():
        mid = 0.5 * (lo + hi)
        go_lo = (
            _scale_exact(
                process, mid[active], vth[active], mobility[active], reference
            )
            > targets[active]
        )
        lo[active] = np.where(go_lo, mid[active], lo[active])
        hi[active] = np.where(go_lo, hi[active], mid[active])
        active = valid & (hi - lo > tolerance)
    values = 0.5 * (lo + hi)
    values[~valid] = np.nan
    return MaskedGrid(values=values.reshape(shape), valid=valid.reshape(shape))


def voltage_for_delay_grid(
    path: CriticalPath,
    delay_ps: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
) -> MaskedGrid:
    """``CriticalPath.voltage_for_delay`` over delay/temperature arrays.

    Unphysically small delays (scalar ``ConfigurationError``) and ``NaN``
    inputs are masked invalid.
    """
    delays = np.asarray(delay_ps, dtype=np.float64)
    physical = ~(delays < path.nominal_delay_ps * 1e-6)  # NaN stays True...
    grid = voltage_for_scale_grid(
        path.process, delays / path.nominal_delay_ps, temperature_c
    )
    # ... but a NaN target fails the `target > 0` gate inside the scale
    # solver, so combining the two masks rejects exactly what the scalar
    # path raises on.
    valid = grid.valid & physical
    values = np.where(valid, grid.values, np.nan)
    return MaskedGrid(values=values, valid=valid)


def critical_voltage_grid(
    path: CriticalPath,
    frequency_ghz: ArrayLike,
    temperature_c: Optional[ArrayLike] = None,
) -> MaskedGrid:
    """``SafetyAnalyzer.critical_voltage`` over frequency[, T] arrays."""
    frequency = np.asarray(frequency_ghz, dtype=np.float64)
    budget = timing_budget_grid(path.process, frequency)
    grid = voltage_for_delay_grid(path, budget.slack_budget_ps, temperature_c)
    valid = grid.valid & budget.valid
    values = np.where(valid, grid.values, np.nan)
    return MaskedGrid(values=values, valid=valid)


def crash_voltage_grid(
    path: CriticalPath,
    frequency_ghz: ArrayLike,
    *,
    crash_fraction: float = 0.035,
) -> MaskedGrid:
    """``SafetyAnalyzer.crash_voltage`` over a frequency array.

    Honours the retention floor exactly as the scalar method does; the
    ``crash_fraction`` validity check stays a real raise because it is a
    scalar parameter, not a grid axis.
    """
    if crash_fraction <= 0:
        raise ConfigurationError("crash_fraction must be positive")
    frequency = np.asarray(frequency_ghz, dtype=np.float64)
    budget = timing_budget_grid(path.process, frequency)
    crash_delay = budget.slack_budget_ps + crash_fraction * budget.t_clk_ps
    grid = voltage_for_delay_grid(path, crash_delay)
    valid = grid.valid & budget.valid
    values = np.where(
        valid, np.maximum(grid.values, path.process.v_retention_volts), np.nan
    )
    return MaskedGrid(values=values, valid=valid)


# -- fault-model kernels ---------------------------------------------------------


def effective_voltage_grid(
    vf_curve, frequency_ghz: float, offsets_mv: ArrayLike
) -> np.ndarray:
    """``VFCurve.effective_voltage`` for one frequency over an offset array.

    The base voltage is the curve's own cached scalar (one design-voltage
    bisection per frequency); the offset arithmetic and regulator clamp
    are elementwise add/``maximum``/``minimum`` — all bit-identical.
    """
    base = vf_curve.base_voltage(frequency_ghz)
    voltage = base + np.asarray(offsets_mv, dtype=np.float64) * 1e-3
    return np.minimum(np.maximum(voltage, 0.0), vf_curve.v_ceiling_volts)


def violated_fraction_grid(
    fault_model: FaultModel, frequency_ghz: float, voltage_volts: ArrayLike
) -> np.ndarray:
    """``FaultModel.violated_fraction`` for one frequency over voltages.

    The critical voltage is one scalar bisection per (frequency,
    temperature) — served by the model's own cache — after which the
    fraction is pure subtract/divide/CDF per cell.
    """
    sigma_volts = fault_model.model.sigma_mv * 1e-3
    z = (
        fault_model.critical_voltage(frequency_ghz)
        - np.asarray(voltage_volts, dtype=np.float64)
    ) / sigma_volts
    return phi_grid(z)


def fault_grid(
    fault_model: FaultModel,
    frequency_ghz: float,
    voltage_volts: ArrayLike,
    *,
    instruction: str = "imul",
) -> FaultGrid:
    """Fraction, per-op fault probability and crash verdict per voltage.

    Pointwise identical to ``FaultModel.violated_fraction`` /
    ``fault_probability`` / ``is_crash``.
    """
    try:
        sensitivity = INSTRUCTION_SENSITIVITY[instruction]
    except KeyError:
        known = ", ".join(sorted(INSTRUCTION_SENSITIVITY))
        raise ConfigurationError(
            f"unknown instruction {instruction!r}; known: {known}"
        ) from None
    voltages = np.asarray(voltage_volts, dtype=np.float64)
    fraction = violated_fraction_grid(fault_model, frequency_ghz, voltages)
    coefficient = sensitivity * BASE_FAULT_RATE_PER_OP
    probability = np.where(
        fraction < ONSET_FRACTION,
        0.0,
        np.minimum(1.0, coefficient * fraction),
    )
    crash = (voltages < fault_model.model.process.v_retention_volts) | (
        fraction >= fault_model.model.crash_fraction
    )
    return FaultGrid(
        violated_fraction=fraction, fault_probability=probability, crash=crash
    )


def explore_feasibility_grid(
    fault_model: FaultModel,
    frequency_ghz: float,
    offsets_mv: ArrayLike,
    *,
    instructions: tuple = ("imul",),
) -> FeasibilityGrid:
    """Safe/feasible/crash verdicts for one frequency over an offset array.

    Composes :func:`effective_voltage_grid` with one :func:`fault_grid`
    per instruction class — pointwise identical to asking the scalar
    ``FaultModel`` about each (frequency, offset, instruction) in turn.
    The ``safe`` mask is the explorer's tier-1 prune: it demands zero
    fault probability for *every* instruction class plus no crash, and
    because ``violated_fraction`` is monotone decreasing in voltage the
    verdict survives any remediation that raises the effective voltage
    (the polling countermeasure's only intervention).
    """
    if not instructions:
        raise ConfigurationError("instructions must name at least one class")
    voltages = effective_voltage_grid(
        fault_model.vf_curve, frequency_ghz, offsets_mv
    )
    probability = np.zeros(voltages.shape)
    crash = np.zeros(voltages.shape, dtype=bool)
    for instruction in instructions:
        grid = fault_grid(
            fault_model, frequency_ghz, voltages, instruction=instruction
        )
        probability = np.maximum(probability, grid.fault_probability)
        crash |= grid.crash
    safe = (probability == 0.0) & ~crash
    return FeasibilityGrid(
        voltage_volts=voltages,
        fault_probability=probability,
        crash=crash,
        safe=safe,
    )
