"""Vectorized batch-simulation core: the numpy fast path.

``repro.vector`` evaluates the three pure functions every fault-space
sweep reduces to — the alpha-power-law delay model, the Eq. 1-3
safe-state predicates and the probabilistic fault draw — over arrays of
operating points per call instead of one scalar object pipeline per
point.  The scalar implementations in ``repro.timing`` / ``repro.faults``
remain the byte-identity **oracle**: every kernel here is proven
bit-identical against them by the fuzz suite in
``tests/test_vector_identity.py``, and the characterization engine keeps
the scalar path selectable (``--no-batch`` / ``REPRO_BATCH=0``) for
cross-checks.

Layout:

* :mod:`repro.vector.kernels` — masked grid kernels over the timing and
  fault physics (sub-threshold points become ``NaN``/``unsafe`` instead
  of per-point ``ConfigurationError``);
* :mod:`repro.vector.characterization` — the vectorized Algo 2 row
  evaluator (:func:`run_row_batch`);
* :mod:`repro.vector.profile` — the out-of-band profiler hook that
  attributes batch-kernel time to ``vector.delay`` / ``vector.safety`` /
  ``vector.fault_draw`` sites.
"""

from repro.vector.characterization import MAX_RECORDED_EVENTS, run_row_batch
from repro.vector.kernels import (
    BudgetGrid,
    FaultGrid,
    FeasibilityGrid,
    MaskedGrid,
    SafetyGrid,
    crash_voltage_grid,
    critical_voltage_grid,
    effective_voltage_grid,
    explore_feasibility_grid,
    fault_grid,
    path_delay_grid,
    phi_grid,
    pow_elementwise,
    raw_delay_grid,
    safety_grid,
    scale_grid,
    timing_budget_grid,
    violated_fraction_grid,
    voltage_for_delay_grid,
    voltage_for_scale_grid,
)
from repro.vector.profile import (
    attach_kernel_profiler,
    detach_kernel_profiler,
    kernel_profiler,
    profiled_kernels,
    record_kernel_site,
)

__all__ = [
    "BudgetGrid",
    "FaultGrid",
    "FeasibilityGrid",
    "MAX_RECORDED_EVENTS",
    "MaskedGrid",
    "SafetyGrid",
    "attach_kernel_profiler",
    "crash_voltage_grid",
    "critical_voltage_grid",
    "detach_kernel_profiler",
    "effective_voltage_grid",
    "explore_feasibility_grid",
    "fault_grid",
    "kernel_profiler",
    "path_delay_grid",
    "phi_grid",
    "pow_elementwise",
    "profiled_kernels",
    "raw_delay_grid",
    "record_kernel_site",
    "run_row_batch",
    "safety_grid",
    "scale_grid",
    "timing_budget_grid",
    "violated_fraction_grid",
    "voltage_for_delay_grid",
    "voltage_for_scale_grid",
]
