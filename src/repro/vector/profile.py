"""Kernel-profiler hook for the vectorized fast path.

The PR-4 :class:`~repro.observe.profiler.SimProfiler` attributes cost per
(component, site) by hooking the event dispatch loop — but the direct-mode
characterization sweep (and its vectorized replacement) never schedules a
simulator event, so there is nothing for ``after_event`` to see.  This
module provides the out-of-band attachment point instead: code on the
batch fast path (and the scalar oracle, for before/after comparisons)
checks :func:`kernel_profiler` and, when one is attached, charges its work
to a named site via ``SimProfiler.record_site``.

The hook is deliberately dependency-free (no repro imports) so that both
``repro.core.characterization`` and ``repro.vector`` can consult it
without creating an import cycle.  Detached, the cost is one module-global
read per row — the same zero-cost-when-disabled contract the simulator
profiler and the verify observers follow.

Site labels used by the batch path (see ``repro.vector.characterization``):

* ``vector.delay`` — V/f curve evaluation and the per-row critical-voltage
  bisection (the alpha-power-law physics);
* ``vector.safety`` — the vectorized violated-fraction / fault-probability
  / crash predicates over the whole offset row;
* ``vector.fault_draw`` — the sequential seeded fault draws for the cells
  whose fault probability is non-zero.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

_kernel_profiler: Optional[Any] = None


def attach_kernel_profiler(profiler: Any) -> None:
    """Install ``profiler`` (a ``SimProfiler``) as the active kernel hook."""
    global _kernel_profiler
    _kernel_profiler = profiler


def detach_kernel_profiler() -> None:
    """Remove the active kernel hook (no-op when none is attached)."""
    global _kernel_profiler
    _kernel_profiler = None


def kernel_profiler() -> Optional[Any]:
    """The currently attached profiler, or ``None``."""
    return _kernel_profiler


def record_kernel_site(
    site: str, *, events: int = 1, wall_s: float = 0.0
) -> None:
    """Charge ``events`` units of work to a ``vector`` profiler site.

    Does nothing when no profiler is attached.  Event counts are
    deterministic (they mirror the number of grid cells evaluated);
    wall-clock stays segregated in the profiler's wall sidecar exactly as
    for dispatch-loop events.
    """
    profiler = _kernel_profiler
    if profiler is not None:
        profiler.record_site("vector", site, events=events, wall_s=wall_s)


@contextmanager
def profiled_kernels(profiler: Any) -> Iterator[Any]:
    """Attach ``profiler`` for the duration of a ``with`` block."""
    previous = _kernel_profiler
    attach_kernel_profiler(profiler)
    try:
        yield profiler
    finally:
        if previous is not None:
            attach_kernel_profiler(previous)
        else:
            detach_kernel_profiler()
