"""Registry-backed performance trajectories and the CI regression gate.

A *trajectory* is the append-only series of benchmark points for one
named bench (``engine_campaign``, ``telemetry_overhead``, …).  Points
live in two places that stay in sync:

* the registry's ``trajectories`` table (the queryable local history,
  fed automatically by the benchmarks and ``repro trajectory record``);
* a canonical ``BENCH_<name>.json`` file — sorted-keys, indented,
  newline-terminated — which is what gets *committed* so CI has a
  baseline to gate against.

``repro trajectory check`` compares a candidate point against the best
baseline value and fails (exit nonzero) when the candidate regresses by
more than ``max_regress`` (a ratio: 0.25 = 25%).  Direction matters:
``lower_is_better`` is part of every point, so a *drop* in a
higher-is-better metric (e.g. speedup) is a regression too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import RegistryError
from repro.registry.registry import RunRegistry

#: Default regression budget for ``repro trajectory check`` (25%).
DEFAULT_MAX_REGRESS = 0.25

#: File-name convention for committed trajectory baselines.
FILE_PREFIX = "BENCH_"


def trajectory_filename(bench: str) -> str:
    """The canonical committed file name for a bench trajectory."""
    return f"{FILE_PREFIX}{bench}.json"


def make_point(
    bench: str,
    metric: str,
    value: float,
    *,
    unit: str = "s",
    lower_is_better: bool = True,
    run_id: Optional[str] = None,
    context: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One canonical trajectory point (plain JSON-safe dict)."""
    return {
        "bench": bench,
        "metric": metric,
        "value": float(value),
        "unit": unit,
        "lower_is_better": bool(lower_is_better),
        "run_id": run_id,
        "context": dict(sorted((context or {}).items())),
    }


def load_trajectory(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The points in a ``BENCH_<name>.json`` file (empty file = [])."""
    target = Path(path)
    if not target.exists():
        return []
    text = target.read_text().strip()
    if not text:
        return []
    points = json.loads(text)
    if not isinstance(points, list):
        raise RegistryError(f"{target} is not a trajectory file (expected a list)")
    return points


def write_trajectory(
    path: Union[str, Path], points: List[Dict[str, Any]]
) -> Path:
    """Write points canonically (sorted keys, indent 2, trailing newline)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(points, sort_keys=True, indent=2) + "\n")
    return target


def extract_metric(artifact: Union[str, Path, Dict[str, Any]], metric: str) -> float:
    """Pull one numeric metric out of a benchmark artifact JSON."""
    if not isinstance(artifact, dict):
        artifact = json.loads(Path(artifact).read_text())
    if metric not in artifact:
        raise RegistryError(
            f"metric {metric!r} not in artifact (has: "
            f"{', '.join(sorted(artifact))})"
        )
    value = artifact[metric]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise RegistryError(f"metric {metric!r} is not numeric: {value!r}")
    return float(value)


def record_point(
    point: Dict[str, Any],
    *,
    registry: Optional[RunRegistry] = None,
    file: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Append a point to the registry trajectory and/or a BENCH file."""
    if registry is not None:
        registry.append_trajectory_point(point["bench"], point)
    if file is not None:
        points = load_trajectory(file)
        points.append(point)
        write_trajectory(file, points)
    return point


@dataclass
class TrajectoryCheck:
    """The verdict of one regression check."""

    bench: str
    metric: str
    baseline_best: float
    candidate: float
    max_regress: float
    lower_is_better: bool = True
    baseline_points: int = 0
    regression: float = 0.0
    ok: bool = True
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "baseline_best": self.baseline_best,
            "candidate": self.candidate,
            "max_regress": self.max_regress,
            "lower_is_better": self.lower_is_better,
            "baseline_points": self.baseline_points,
            "regression": self.regression,
            "ok": self.ok,
            "notes": self.notes,
        }

    def render(self) -> str:
        direction = "lower" if self.lower_is_better else "higher"
        verdict = "OK" if self.ok else "REGRESSION"
        lines = [
            f"trajectory check [{self.bench}/{self.metric}] {verdict}: "
            f"candidate {self.candidate:.6g} vs baseline best "
            f"{self.baseline_best:.6g} ({direction} is better, "
            f"{self.baseline_points} baseline point(s))",
            f"  regression {self.regression * 100:+.1f}% against a budget "
            f"of {self.max_regress * 100:.0f}%",
        ]
        lines.extend(f"  {note}" for note in self.notes)
        return "\n".join(lines)


def check_point(
    baseline: List[Dict[str, Any]],
    candidate: Dict[str, Any],
    *,
    max_regress: float = DEFAULT_MAX_REGRESS,
) -> TrajectoryCheck:
    """Gate a candidate point against a baseline trajectory.

    The candidate is compared against the *best* baseline value for the
    same metric (min for lower-is-better, max otherwise): a trajectory
    is a ratchet — once a perf win is recorded, later code must not give
    it back, no matter how mediocre the intermediate points were.
    """
    bench = candidate.get("bench", "?")
    metric = candidate.get("metric", "?")
    matching = [
        point
        for point in baseline
        if point.get("metric") == metric
        and isinstance(point.get("value"), (int, float))
    ]
    if not matching:
        raise RegistryError(
            f"baseline trajectory has no points for metric {metric!r} "
            f"(bench {bench!r}) — record one first"
        )
    lower = bool(candidate.get("lower_is_better", True))
    values = [float(point["value"]) for point in matching]
    best = min(values) if lower else max(values)
    value = float(candidate["value"])
    if best == 0.0:
        regression = 0.0 if value == 0.0 else float("inf")
    elif lower:
        regression = (value - best) / best
    else:
        regression = (best - value) / best
    check = TrajectoryCheck(
        bench=bench,
        metric=metric,
        baseline_best=best,
        candidate=value,
        max_regress=max_regress,
        lower_is_better=lower,
        baseline_points=len(matching),
        regression=regression,
        ok=regression <= max_regress,
    )
    if not check.ok:
        check.notes.append(
            "the committed BENCH baseline is a ratchet: either fix the "
            "regression or consciously re-baseline the trajectory file"
        )
    return check
