"""``repro reproduce <run-id>``: re-execute a recorded run, assert bytes.

The registry stores, for every job of a recorded campaign, the pickled
:class:`~repro.engine.jobs.JobSpec` and the pickled result payload, both
content-addressed.  Reproducing a run is therefore mechanical:

1. restore the recorded result-affecting environment (the values are in
   the schema-3 manifest, and the job fingerprints fold them in — a spec
   re-hashed under the wrong environment would not even match its
   recorded fingerprint);
2. unpickle each job spec, re-hash it, and demand the fingerprint the
   registry recorded (anything else means the code's identity scheme
   drifted — a reproduction would be comparing apples to oranges);
3. re-execute the job through the same ``execute_job`` worker entry
   point every executor uses, pickle the payload, and demand
   byte-identity with the stored blob.

Every stored blob is integrity-verified on read (its bytes must hash to
its address), so a tampered registry cannot silently "reproduce": the
mismatch is reported per job, with the sha256 pair and a payload diff,
and the CLI exits nonzero.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import RegistryError, RegistryIntegrityError
from repro.registry.registry import RunRegistry
from repro.registry.store import encode_object, sha256_hex

#: Per-job verdicts a reproduction can reach.
IDENTICAL = "identical"
MISMATCH = "mismatch"
TAMPERED = "tampered"
SPEC_DRIFT = "spec-drift"
ERROR = "error"
SKIPPED = "skipped"


@dataclass
class JobReproduction:
    """One job's verdict: stored bytes versus freshly recomputed bytes."""

    fingerprint: str
    kind: str
    seed_path: List[str]
    status: str
    stored_sha: Optional[str] = None
    recomputed_sha: Optional[str] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in (IDENTICAL, SKIPPED)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "seed_path": self.seed_path,
            "status": self.status,
            "stored_sha": self.stored_sha,
            "recomputed_sha": self.recomputed_sha,
            "detail": self.detail,
        }


@dataclass
class ReproduceReport:
    """The full verdict of one ``repro reproduce`` invocation."""

    run_id: str
    jobs: List[JobReproduction] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(job.ok for job in self.jobs)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self.jobs:
            out[job.status] = out.get(job.status, 0) + 1
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "ok": self.ok,
            "counts": self.counts(),
            "jobs": [job.as_dict() for job in self.jobs],
        }

    def render(self) -> str:
        """Human-readable verdict, one line per non-identical job."""
        lines = [f"reproduce {self.run_id[:12]}: "
                 + ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))]
        for job in self.jobs:
            if job.ok:
                continue
            lines.append(
                f"  [{job.status}] {job.kind} {'/'.join(job.seed_path)} "
                f"fingerprint={job.fingerprint[:12]}"
            )
            if job.stored_sha or job.recomputed_sha:
                lines.append(
                    f"    stored     sha256={job.stored_sha or '-'}"
                )
                lines.append(
                    f"    recomputed sha256={job.recomputed_sha or '-'}"
                )
            if job.detail:
                for detail_line in job.detail.splitlines():
                    lines.append(f"    {detail_line}")
        if self.ok:
            lines.append("  every result blob reproduced byte-for-byte")
        return "\n".join(lines)


@contextmanager
def _environment(values: Dict[str, str]) -> Iterator[None]:
    """Temporarily pin the result-affecting environment to ``values``.

    The empty string means "unset" (the engine canonicalizes absence and
    emptiness to the same fingerprint input, see
    ``repro.engine.jobs.environment_fingerprint``).
    """
    saved = {name: os.environ.get(name) for name in values}
    try:
        for name, value in values.items():
            if value:
                os.environ[name] = value
            else:
                os.environ.pop(name, None)
        yield
    finally:
        for name, previous in saved.items():
            if previous is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous


def _payload_diff(stored: Any, recomputed: Any, *, width: int = 160) -> str:
    """A short structural diff between two unequal payloads."""
    a, b = repr(stored), repr(recomputed)
    if a == b:
        return (
            "payloads repr-equal but pickle bytes differ "
            "(object graph / type drift)"
        )
    prefix = 0
    for prefix, (x, y) in enumerate(zip(a, b)):
        if x != y:
            break
    start = max(0, prefix - 40)
    return (
        f"payloads diverge at repr offset {prefix}:\n"
        f"stored:     …{a[start:start + width]}…\n"
        f"recomputed: …{b[start:start + width]}…"
    )


def reproduce_run(
    registry: RunRegistry, run_id_or_prefix: str
) -> ReproduceReport:
    """Re-execute every job of a recorded run and compare result bytes.

    Each distinct fingerprint is executed once (the registry never
    stores two payloads for one fingerprint within a run).  Jobs the
    original run quarantined have no payload to compare and are reported
    as ``skipped``.
    """
    from repro.engine.jobs import RESULT_AFFECTING_ENV, execute_job

    run_id = registry.resolve(run_id_or_prefix)
    manifest = registry.manifest(run_id)
    rows = registry.results_for(run_id)
    if not rows:
        raise RegistryError(f"run {run_id[:12]} has no recorded results")
    recorded_env = dict(manifest.get("env", {}).get("result_affecting", {}))
    # Older (schema < 3) manifests lack resolved values; reproduce under
    # the current environment and let the fingerprint check arbitrate.
    env = {name: recorded_env.get(name, "") for name in RESULT_AFFECTING_ENV}
    report = ReproduceReport(run_id=run_id)
    with _environment(env):
        for row in rows:
            job = JobReproduction(
                fingerprint=row["fingerprint"],
                kind=row["kind"],
                seed_path=list(row["seed_path"]),
                status=ERROR,
                stored_sha=row.get("payload_sha"),
            )
            report.jobs.append(job)
            if row["source"] == "quarantined" or not row.get("payload_sha"):
                job.status = SKIPPED
                job.detail = "no payload recorded (job was quarantined)"
                continue
            try:
                stored_bytes = registry.store.get_bytes(row["payload_sha"])
                spec = registry.store.get(row["spec_sha"])
            except RegistryIntegrityError as error:
                job.status = TAMPERED
                job.detail = str(error)
                continue
            fingerprint = spec.fingerprint()
            if fingerprint != row["fingerprint"]:
                job.status = SPEC_DRIFT
                job.recomputed_sha = None
                job.detail = (
                    f"stored spec re-hashes to {fingerprint[:12]} under the "
                    "recorded environment — the job identity scheme changed "
                    "since this run was recorded"
                )
                continue
            try:
                result = execute_job(spec)
            except Exception as error:  # noqa: BLE001 - reported per job
                job.detail = f"{type(error).__name__}: {error}"
                continue
            recomputed_bytes = encode_object(result.payload)
            job.recomputed_sha = sha256_hex(recomputed_bytes)
            if recomputed_bytes == stored_bytes:
                job.status = IDENTICAL
            else:
                job.status = MISMATCH
                try:
                    stored_payload = registry.store.get(row["payload_sha"])
                    job.detail = _payload_diff(stored_payload, result.payload)
                except Exception:  # pragma: no cover - diff is best-effort
                    job.detail = "stored payload could not be unpickled for diffing"
    return report
