"""repro.registry — content-addressed run registry and perf trajectories.

The observability layer that makes every campaign *re-executable on
demand*: a local sqlite index plus a sha256-addressed blob store under
``REPRO_REGISTRY_DIR`` (default ``~/.repro/registry``), written
automatically by every :class:`~repro.engine.session.EngineSession`
(opt out with ``REPRO_REGISTRY=0``) and queried by the ``repro runs``,
``repro reproduce``, ``repro diff`` and ``repro trajectory`` CLI verbs.

* :class:`RunRegistry` — the index: runs, per-job results, flight
  dumps, bench trajectories;
* :class:`ObjectStore` — the blobs: manifests, pickled job specs,
  pickled payloads, each verified against its address on read;
* :func:`reproduce_run` — re-execute a recorded run and assert
  byte-identity of every result blob;
* :func:`diff_runs` — attribute drift between two runs to code,
  environment, spec, composition or (nondeterministic) results;
* :mod:`repro.registry.trajectory` — registry-backed ``BENCH_*.json``
  perf trajectories with a CI regression gate.

``reproduce``/``diff`` import the engine; the index and store modules do
not, so the engine session can import them without a cycle.
"""

from repro.registry.diff import RunDiff, SpecDrift, diff_runs
from repro.registry.registry import (
    DEFAULT_REGISTRY_DIR,
    INDEX_SCHEMA_VERSION,
    REGISTRY_DIR_ENV,
    REGISTRY_ENV,
    RunRegistry,
    code_fingerprint,
    compute_run_id,
    registry_dir_from_env,
)
from repro.registry.reproduce import (
    JobReproduction,
    ReproduceReport,
    reproduce_run,
)
from repro.registry.store import ObjectStore, StoreStats, encode_object, sha256_hex
from repro.registry.trajectory import (
    DEFAULT_MAX_REGRESS,
    TrajectoryCheck,
    check_point,
    extract_metric,
    load_trajectory,
    make_point,
    record_point,
    trajectory_filename,
    write_trajectory,
)

__all__ = [
    "DEFAULT_MAX_REGRESS",
    "DEFAULT_REGISTRY_DIR",
    "INDEX_SCHEMA_VERSION",
    "JobReproduction",
    "ObjectStore",
    "REGISTRY_DIR_ENV",
    "REGISTRY_ENV",
    "ReproduceReport",
    "RunDiff",
    "RunRegistry",
    "SpecDrift",
    "StoreStats",
    "TrajectoryCheck",
    "check_point",
    "code_fingerprint",
    "compute_run_id",
    "diff_runs",
    "encode_object",
    "extract_metric",
    "load_trajectory",
    "make_point",
    "record_point",
    "registry_dir_from_env",
    "reproduce_run",
    "sha256_hex",
    "trajectory_filename",
    "write_trajectory",
]
