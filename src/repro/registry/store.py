"""Content-addressed blob store for the run registry.

Every object — a pickled job payload, a pickled job spec, a run
manifest — is stored once under the sha256 of its bytes::

    <root>/objects/<sha256[:2]>/<sha256>

The address *is* the integrity check: a read hashes the bytes it got and
raises :class:`~repro.errors.RegistryIntegrityError` when they no longer
match the name they were filed under, so a tampered or bit-rotted blob
can never masquerade as the recorded result.  Writes follow the same
atomic-publish discipline as :class:`repro.engine.cache.ResultCache` and
:class:`repro.engine.checkpoint.CampaignCheckpoint` (write a temp file,
``rename`` into place), so a SIGKILL mid-write leaves at worst an
ignored ``*.tmp.*`` file, never a half-object at a valid address.

Because addresses are content hashes, the store deduplicates for free:
putting bytes that are already present touches nothing and is counted as
a dedup hit (surfaced by ``repro status --registry``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Tuple, Union

from repro.errors import RegistryIntegrityError

#: Subdirectory of the registry root that holds the blobs.
OBJECTS_DIR = "objects"


def sha256_hex(blob: bytes) -> str:
    """The store address for ``blob``."""
    return hashlib.sha256(blob).hexdigest()


def encode_object(payload: Any) -> bytes:
    """Canonical pickle bytes for a payload (the bytes that get hashed).

    Uses the highest protocol, matching the byte-identity contract the
    engine benchmarks already pin (``pickle.dumps(a) == pickle.dumps(b)``
    for equal seeded results).
    """
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


@dataclass
class StoreStats:
    """Write-side effectiveness counters for one store handle."""

    puts: int = 0
    writes: int = 0
    dedup_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "puts": self.puts,
            "writes": self.writes,
            "dedup_hits": self.dedup_hits,
        }


@dataclass
class ObjectStore:
    """sha256-addressed blob store under ``<root>/objects/``."""

    root: Union[str, Path]
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def objects_root(self) -> Path:
        return Path(self.root) / OBJECTS_DIR

    def _path(self, sha: str) -> Path:
        return self.objects_root / sha[:2] / sha

    # -- writing -----------------------------------------------------------------

    def put_bytes(self, blob: bytes) -> str:
        """Store ``blob``; returns its sha256 address.

        Idempotent: an address that already exists is left untouched
        (content-addressing makes overwrites meaningless) and counted as
        a dedup hit.
        """
        sha = sha256_hex(blob)
        self.stats.puts += 1
        path = self._path(sha)
        if path.exists():
            self.stats.dedup_hits += 1
            return sha
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{sha}.tmp.{os.getpid()}")
        tmp.write_bytes(blob)
        tmp.replace(path)
        self.stats.writes += 1
        return sha

    def put(self, payload: Any) -> str:
        """Pickle ``payload`` and store it; returns the sha256 address."""
        return self.put_bytes(encode_object(payload))

    # -- reading -----------------------------------------------------------------

    def get_bytes(self, sha: str) -> bytes:
        """The verified bytes stored at ``sha``.

        Raises :class:`RegistryIntegrityError` when the object is
        missing or its bytes no longer hash to their address.
        """
        path = self._path(sha)
        try:
            blob = path.read_bytes()
        except OSError as error:
            raise RegistryIntegrityError(
                f"registry object {sha[:12]}… is missing ({path})", sha256=sha
            ) from error
        if sha256_hex(blob) != sha:
            raise RegistryIntegrityError(
                f"registry object {sha[:12]}… failed content verification "
                "(bytes do not hash to their address — tampered or torn)",
                sha256=sha,
            )
        return blob

    def get(self, sha: str) -> Any:
        """Unpickle the verified object stored at ``sha``."""
        return pickle.loads(self.get_bytes(sha))

    def __contains__(self, sha: str) -> bool:
        return self._path(sha).exists()

    # -- accounting --------------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        root = self.objects_root
        if not root.exists():
            return iter(())
        return (
            entry
            for bucket in sorted(root.iterdir())
            if bucket.is_dir()
            for entry in sorted(bucket.iterdir())
            if entry.is_file() and ".tmp." not in entry.name
        )

    def census(self) -> Tuple[int, int]:
        """(object count, total bytes) currently on disk."""
        count = 0
        size = 0
        for entry in self._entries():
            try:
                size += entry.stat().st_size
                count += 1
            except OSError:
                continue
        return count, size
