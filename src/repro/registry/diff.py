"""``repro diff <a> <b>``: explain *why* two recorded runs differ.

Because a run id is a content address over provenance, two different
run ids must differ in at least one attributable input.  The diff walks
the attribution ladder from cheapest to most expensive explanation:

1. **code** — the recorded code fingerprints (version / git-describe)
   differ;
2. **environment** — a resolved ``RESULT_AFFECTING_ENV`` value differs;
3. **spec** — jobs sharing a seed-stream path hash to different
   fingerprints, and the stored identity dicts name exactly which spec
   fields moved (the ``env`` component of the identity is attributed to
   the environment rung instead);
4. **composition** — a job exists in one run with no counterpart in the
   other;
5. **results** — identical fingerprints with different payload bytes.
   This is the rung that should be unreachable: same spec, same seeds,
   same environment, different bytes means the simulation itself is
   nondeterministic, and the diff says so explicitly.

What the diff *cannot* attribute: payload differences between jobs whose
specs already differ (the spec drift subsumes them), and anything about
runs whose manifests were recorded by engines with different identity
schemas — both are reported as such rather than guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.registry.registry import RunRegistry


@dataclass
class SpecDrift:
    """One job pair with the same seed path but different fingerprints."""

    seed_path: List[str]
    kind: str
    fingerprint_a: str
    fingerprint_b: str
    changed_fields: List[str] = field(default_factory=list)


@dataclass
class RunDiff:
    """Structured drift explanation between two recorded runs."""

    run_a: str
    run_b: str
    identical: bool = False
    code_drift: Optional[Tuple[Dict[str, Any], Dict[str, Any]]] = None
    env_drift: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    spec_drift: List[SpecDrift] = field(default_factory=list)
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)
    result_drift: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "identical": self.identical,
            "code_drift": list(self.code_drift) if self.code_drift else None,
            "env_drift": {
                name: list(values) for name, values in self.env_drift.items()
            },
            "spec_drift": [
                {
                    "seed_path": drift.seed_path,
                    "kind": drift.kind,
                    "fingerprint_a": drift.fingerprint_a,
                    "fingerprint_b": drift.fingerprint_b,
                    "changed_fields": drift.changed_fields,
                }
                for drift in self.spec_drift
            ],
            "only_in_a": self.only_in_a,
            "only_in_b": self.only_in_b,
            "result_drift": self.result_drift,
        }

    def render(self) -> str:
        a, b = self.run_a[:12], self.run_b[:12]
        if self.identical:
            return (
                f"runs {a} and {b} are the same content-addressed run — "
                "no drift to explain"
            )
        lines = [f"diff {a} ↔ {b}"]
        if self.code_drift:
            code_a, code_b = self.code_drift
            lines.append(
                f"  code drift: {code_a} → {code_b} "
                "(different code recorded these runs)"
            )
        for name, (value_a, value_b) in sorted(self.env_drift.items()):
            lines.append(
                f"  env drift: {name}={value_a or '<unset>'} → "
                f"{value_b or '<unset>'}"
            )
        for drift in self.spec_drift:
            fields = ", ".join(drift.changed_fields) or "unattributable fields"
            lines.append(
                f"  spec drift: {drift.kind} {'/'.join(drift.seed_path)} "
                f"({drift.fingerprint_a[:12]} → {drift.fingerprint_b[:12]}): "
                f"{fields}"
            )
        if self.only_in_a:
            lines.append(
                f"  composition: {len(self.only_in_a)} job(s) only in {a}"
            )
        if self.only_in_b:
            lines.append(
                f"  composition: {len(self.only_in_b)} job(s) only in {b}"
            )
        for fingerprint in self.result_drift:
            lines.append(
                f"  RESULT drift: fingerprint {fingerprint[:12]} has "
                "identical spec+env+seeds but different payload bytes — "
                "this indicates nondeterministic execution, not input drift"
            )
        if len(lines) == 1:
            lines.append(
                "  runs differ only in how they went (cache hits, wall "
                "time), not in what they were"
            )
        return "\n".join(lines)


def _identity_fields(
    identity_a: Optional[Dict[str, Any]], identity_b: Optional[Dict[str, Any]]
) -> List[str]:
    """Which identity fields moved between two specs at one seed path."""
    if not identity_a or not identity_b:
        return []
    changed = []
    for key in sorted(set(identity_a) | set(identity_b)):
        if identity_a.get(key) != identity_b.get(key):
            changed.append("env" if key == "env" else key)
    return changed


def diff_runs(
    registry: RunRegistry, a_id_or_prefix: str, b_id_or_prefix: str
) -> RunDiff:
    """Explain the drift between two recorded runs (see module docs)."""
    run_a = registry.resolve(a_id_or_prefix)
    run_b = registry.resolve(b_id_or_prefix)
    diff = RunDiff(run_a=run_a, run_b=run_b)
    if run_a == run_b:
        diff.identical = True
        return diff
    row_a = registry.get_run(run_a)
    row_b = registry.get_run(run_b)
    if row_a["code"] != row_b["code"]:
        diff.code_drift = (row_a["code"], row_b["code"])
    env_a, env_b = row_a["env"], row_b["env"]
    for name in sorted(set(env_a) | set(env_b)):
        if env_a.get(name, "") != env_b.get(name, ""):
            diff.env_drift[name] = (env_a.get(name, ""), env_b.get(name, ""))

    results_a = registry.results_for(run_a)
    results_b = registry.results_for(run_b)
    by_path_a = {(tuple(r["seed_path"]), r["kind"]): r for r in results_a}
    by_path_b = {(tuple(r["seed_path"]), r["kind"]): r for r in results_b}
    for key in sorted(set(by_path_a) | set(by_path_b)):
        in_a, in_b = by_path_a.get(key), by_path_b.get(key)
        if in_a is None:
            diff.only_in_b.append(in_b["fingerprint"])
            continue
        if in_b is None:
            diff.only_in_a.append(in_a["fingerprint"])
            continue
        if in_a["fingerprint"] != in_b["fingerprint"]:
            changed = _identity_fields(in_a["identity"], in_b["identity"])
            diff.spec_drift.append(
                SpecDrift(
                    seed_path=list(key[0]),
                    kind=key[1],
                    fingerprint_a=in_a["fingerprint"],
                    fingerprint_b=in_b["fingerprint"],
                    changed_fields=changed,
                )
            )
        elif (
            in_a.get("payload_sha")
            and in_b.get("payload_sha")
            and in_a["payload_sha"] != in_b["payload_sha"]
        ):
            diff.result_drift.append(in_a["fingerprint"])
    return diff
