"""The local run registry: sqlite index + content-addressed blob store.

A :class:`RunRegistry` lives in one directory (``REPRO_REGISTRY_DIR``,
default ``~/.repro/registry``)::

    <dir>/index.sqlite            # runs / results / flights / trajectories
    <dir>/objects/<sha[:2]>/<sha> # manifests, job specs, result payloads

Recording is two-phase and crash-safe by construction:

1. **Staging** — as campaign jobs complete, the engine session pickles
   each job spec and payload into the blob store
   (:meth:`stage_result`).  Blob publishes are atomic (temp + rename);
   a SIGKILL here leaves orphaned-but-valid objects and *no* index rows.
2. **Committing** — :meth:`record_run` writes the run row, its result
   rows and its flight-dump rows in one sqlite transaction.  sqlite's
   journal makes the commit atomic, so the index is consistent at every
   instant: a run either appears completely or not at all.

Run ids are *content addresses over provenance*: the sha256 of the
canonical identity of what ran — schema, code fingerprint, the resolved
result-affecting environment, and the ordered job fingerprints (each of
which already folds in the job spec, its seed-stream path and the env,
see :meth:`repro.engine.jobs.JobSpec.fingerprint`).  Re-recording the
same campaign therefore lands on the same run id (idempotent), and two
different run ids *must* differ in at least one attributable input —
the property ``repro diff`` exploits.

This module deliberately imports nothing from :mod:`repro.engine`, so
the engine session can depend on it without a cycle; re-execution lives
in :mod:`repro.registry.reproduce`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from datetime import datetime, timezone
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import RegistryError
from repro.registry.store import ObjectStore, sha256_hex

#: Environment switch: ``REPRO_REGISTRY=0`` disables automatic recording.
REGISTRY_ENV = "REPRO_REGISTRY"

#: Environment variable naming the registry directory.
REGISTRY_DIR_ENV = "REPRO_REGISTRY_DIR"

#: Default registry location when the environment names none.
DEFAULT_REGISTRY_DIR = "~/.repro/registry"

#: Index schema tag; bumped on incompatible table changes.
INDEX_SCHEMA_VERSION = 1

#: Run row status values.
RUN_STATUS_COMPLETE = "complete"
RUN_STATUS_QUARANTINED = "quarantined"

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    created_at TEXT NOT NULL,
    status TEXT NOT NULL,
    schema INTEGER NOT NULL,
    manifest_sha TEXT NOT NULL,
    code_json TEXT NOT NULL,
    env_json TEXT NOT NULL,
    codenames_json TEXT NOT NULL,
    jobs_total INTEGER NOT NULL,
    jobs_executed INTEGER NOT NULL,
    jobs_cached INTEGER NOT NULL,
    jobs_resumed INTEGER NOT NULL,
    jobs_quarantined INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    run_id TEXT NOT NULL,
    position INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    kind TEXT NOT NULL,
    seed_path TEXT NOT NULL,
    source TEXT NOT NULL,
    spec_sha TEXT,
    payload_sha TEXT,
    identity_json TEXT,
    PRIMARY KEY (run_id, fingerprint)
);
CREATE TABLE IF NOT EXISTS flights (
    run_id TEXT NOT NULL,
    path TEXT NOT NULL,
    sha256 TEXT NOT NULL,
    reason TEXT NOT NULL,
    PRIMARY KEY (run_id, path)
);
CREATE TABLE IF NOT EXISTS trajectories (
    bench TEXT NOT NULL,
    seq INTEGER NOT NULL,
    recorded_at TEXT NOT NULL,
    point_json TEXT NOT NULL,
    PRIMARY KEY (bench, seq)
);
CREATE TABLE IF NOT EXISTS spans (
    run_id TEXT PRIMARY KEY,
    recorded_at TEXT NOT NULL,
    trace_id TEXT,
    span_count INTEGER NOT NULL,
    timeline_sha TEXT NOT NULL
);
"""


def registry_dir_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Optional[Path]:
    """The registry directory the environment selects, or ``None``.

    ``REPRO_REGISTRY=0`` opts out entirely; otherwise
    ``REPRO_REGISTRY_DIR`` (or the ``~/.repro/registry`` default) names
    the directory.
    """
    env = os.environ if environ is None else environ
    if env.get(REGISTRY_ENV, "").strip() == "0":
        return None
    raw = env.get(REGISTRY_DIR_ENV, "").strip()
    return Path(raw).expanduser() if raw else Path(DEFAULT_REGISTRY_DIR).expanduser()


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def compute_run_id(manifest: Dict[str, Any]) -> str:
    """The content-addressed run id for a run manifest.

    Folds exactly the *deterministic provenance* of the run: manifest
    schema, code fingerprint, the resolved result-affecting environment
    and the ordered job fingerprints.  Wall times, cache-vs-executed
    sourcing and metric snapshots are excluded on purpose — they describe
    how the run went, not what it was, and must not split the address of
    otherwise-identical campaigns.
    """
    env = manifest.get("env", {})
    identity = {
        "schema": manifest.get("schema"),
        "code": manifest.get("code"),
        "env": env.get("result_affecting", {}),
        "jobs": [
            [job.get("kind"), job.get("fingerprint")]
            for batch in manifest.get("batches", [])
            for job in batch.get("jobs", [])
        ],
    }
    return hashlib.sha256(_canonical_json(identity).encode("utf-8")).hexdigest()


def _utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


@lru_cache(maxsize=1)
def code_fingerprint() -> Dict[str, Optional[str]]:
    """The code identity recorded in every schema-3 manifest.

    ``version`` is always present; ``describe`` is ``git describe
    --always --dirty`` when the checkout has git available (cached for
    the process — manifests are written far more often than code
    changes mid-process).
    """
    import repro

    describe: Optional[str] = None
    try:
        import subprocess

        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(repro.__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if completed.returncode == 0:
            describe = completed.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        describe = None
    return {"version": repro.__version__, "describe": describe}


def _codenames_of(rows: Sequence[Dict[str, Any]]) -> List[str]:
    names = set()
    for row in rows:
        path = row.get("seed_path") or []
        # Seed paths are ("characterization"|"campaign"|..., codename, ...).
        if len(path) >= 2:
            names.add(str(path[1]))
    return sorted(names)


class RunRegistry:
    """One registry directory: index database plus object store."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.store = ObjectStore(self.directory)
        self._ensure_schema()

    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None
    ) -> Optional["RunRegistry"]:
        """The environment-selected registry, or ``None`` when opted out."""
        directory = registry_dir_from_env(environ)
        return cls(directory) if directory is not None else None

    # -- index plumbing ----------------------------------------------------------

    def _db_path(self) -> Path:
        return self.directory / "index.sqlite"

    def _connect(self) -> sqlite3.Connection:
        self.directory.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self._db_path(), timeout=30.0)
        connection.row_factory = sqlite3.Row
        return connection

    def _ensure_schema(self) -> None:
        with self._connect() as db:
            db.executescript(_TABLES)
            db.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("index_schema", str(INDEX_SCHEMA_VERSION)),
            )
            row = db.execute(
                "SELECT value FROM meta WHERE key = 'index_schema'"
            ).fetchone()
        if row is not None and int(row["value"]) != INDEX_SCHEMA_VERSION:
            raise RegistryError(
                f"registry index schema {row['value']} at {self.directory} "
                f"!= supported {INDEX_SCHEMA_VERSION}"
            )

    # -- staging (phase 1) -------------------------------------------------------

    def stage_result(
        self,
        *,
        kind: str,
        fingerprint: str,
        seed_path: Sequence[str],
        source: str,
        identity: Optional[Dict[str, Any]] = None,
        spec_bytes: Optional[bytes] = None,
        payload_bytes: Optional[bytes] = None,
    ) -> Dict[str, Any]:
        """Publish one job's blobs and return its pending result row.

        Blob writes happen *now* (atomically, deduplicated); the row is
        returned to the caller to pass to :meth:`record_run`, which is
        the only place index rows are born.  Quarantined jobs stage with
        no payload bytes.
        """
        spec_sha = self.store.put_bytes(spec_bytes) if spec_bytes else None
        payload_sha = (
            self.store.put_bytes(payload_bytes) if payload_bytes else None
        )
        return {
            "fingerprint": fingerprint,
            "kind": kind,
            "seed_path": list(seed_path),
            "source": source,
            "spec_sha": spec_sha,
            "payload_sha": payload_sha,
            "identity": identity,
        }

    # -- committing (phase 2) ----------------------------------------------------

    def record_run(
        self,
        manifest: Dict[str, Any],
        rows: Sequence[Dict[str, Any]],
        *,
        flights: Iterable[Dict[str, Any]] = (),
    ) -> str:
        """Commit one run: manifest blob + all index rows, atomically.

        Returns the content-addressed run id.  Re-recording the same
        campaign is idempotent (same id, rows replaced in place).
        """
        run_id = manifest.get("run_id") or compute_run_id(manifest)
        manifest = dict(manifest, run_id=run_id)
        manifest_sha = self.store.put_bytes(
            json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8")
        )
        by_source: Dict[str, int] = {}
        for row in rows:
            by_source[row["source"]] = by_source.get(row["source"], 0) + 1
        status = (
            RUN_STATUS_QUARANTINED
            if by_source.get("quarantined")
            else RUN_STATUS_COMPLETE
        )
        env = manifest.get("env", {})
        with self._connect() as db:
            db.execute(
                "INSERT OR REPLACE INTO runs (run_id, created_at, status, "
                "schema, manifest_sha, code_json, env_json, codenames_json, "
                "jobs_total, jobs_executed, jobs_cached, jobs_resumed, "
                "jobs_quarantined) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    _utc_now(),
                    status,
                    int(manifest.get("schema", 0)),
                    manifest_sha,
                    _canonical_json(manifest.get("code", {})),
                    _canonical_json(env.get("result_affecting", {})),
                    _canonical_json(_codenames_of(rows)),
                    len(rows),
                    # Remote execution is still execution, and a fleet
                    # dedup hit is still a cache hit — the fixed runs
                    # columns keep their conservation law while the
                    # results table retains the raw per-job source for
                    # the by-origin breakdown in describe().
                    by_source.get("executed", 0) + by_source.get("remote", 0),
                    by_source.get("cache", 0) + by_source.get("remote-cache", 0),
                    by_source.get("resumed", 0),
                    by_source.get("quarantined", 0),
                ),
            )
            db.execute("DELETE FROM results WHERE run_id = ?", (run_id,))
            for position, row in enumerate(rows):
                db.execute(
                    "INSERT OR REPLACE INTO results (run_id, position, "
                    "fingerprint, kind, seed_path, source, spec_sha, "
                    "payload_sha, identity_json) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        position,
                        row["fingerprint"],
                        row["kind"],
                        _canonical_json(row["seed_path"]),
                        row["source"],
                        row.get("spec_sha"),
                        row.get("payload_sha"),
                        _canonical_json(row["identity"])
                        if row.get("identity") is not None
                        else None,
                    ),
                )
            for flight in flights:
                db.execute(
                    "INSERT OR REPLACE INTO flights (run_id, path, sha256, "
                    "reason) VALUES (?, ?, ?, ?)",
                    (
                        run_id,
                        str(flight["path"]),
                        flight["sha256"],
                        flight.get("reason", "unknown"),
                    ),
                )
        return run_id

    def register_flight(
        self, run_id: str, path: Union[str, Path], *, reason: str = "unknown"
    ) -> Dict[str, Any]:
        """Index one flight dump (path + sha256) under a recorded run."""
        data = Path(path).read_bytes()
        record = {"path": str(path), "sha256": sha256_hex(data), "reason": reason}
        with self._connect() as db:
            db.execute(
                "INSERT OR REPLACE INTO flights (run_id, path, sha256, reason) "
                "VALUES (?, ?, ?, ?)",
                (run_id, record["path"], record["sha256"], record["reason"]),
            )
        return record

    # -- querying ----------------------------------------------------------------

    def resolve(self, run_id_or_prefix: str) -> str:
        """The full run id for an exact id or unique prefix."""
        prefix = run_id_or_prefix.strip()
        if not prefix:
            raise RegistryError("empty run id")
        with self._connect() as db:
            rows = db.execute(
                "SELECT run_id FROM runs WHERE run_id LIKE ? ORDER BY run_id",
                (prefix + "%",),
            ).fetchall()
        if not rows:
            raise RegistryError(
                f"no run matching {prefix!r} in registry {self.directory}"
            )
        if len(rows) > 1:
            matches = ", ".join(row["run_id"][:12] for row in rows[:5])
            raise RegistryError(
                f"run id prefix {prefix!r} is ambiguous ({matches}, …)"
            )
        return rows[0]["run_id"]

    def runs(
        self,
        *,
        codename: Optional[str] = None,
        status: Optional[str] = None,
        since: Optional[str] = None,
        fingerprint: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Run rows, newest first, filtered by the given criteria."""
        query = "SELECT * FROM runs"
        clauses: List[str] = []
        params: List[Any] = []
        if status:
            clauses.append("status = ?")
            params.append(status)
        if since:
            clauses.append("created_at >= ?")
            params.append(since)
        if codename:
            clauses.append("codenames_json LIKE ?")
            params.append(f'%"{codename}"%')
        if fingerprint:
            clauses.append(
                "run_id IN (SELECT run_id FROM results WHERE fingerprint LIKE ?)"
            )
            params.append(fingerprint + "%")
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at DESC, run_id"
        if limit:
            query += f" LIMIT {int(limit)}"
        with self._connect() as db:
            rows = db.execute(query, params).fetchall()
        return [self._run_row(row) for row in rows]

    @staticmethod
    def _run_row(row: sqlite3.Row) -> Dict[str, Any]:
        record = dict(row)
        record["code"] = json.loads(record.pop("code_json"))
        record["env"] = json.loads(record.pop("env_json"))
        record["codenames"] = json.loads(record.pop("codenames_json"))
        return record

    def get_run(self, run_id_or_prefix: str) -> Dict[str, Any]:
        """One run row (resolved by id or unique prefix)."""
        run_id = self.resolve(run_id_or_prefix)
        with self._connect() as db:
            row = db.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return self._run_row(row)

    def manifest(self, run_id_or_prefix: str) -> Dict[str, Any]:
        """The stored ``run.json`` manifest for a run (verified bytes)."""
        run = self.get_run(run_id_or_prefix)
        return json.loads(self.store.get_bytes(run["manifest_sha"]))

    def results_for(self, run_id_or_prefix: str) -> List[Dict[str, Any]]:
        """Result rows for a run, in campaign order."""
        run_id = self.resolve(run_id_or_prefix)
        with self._connect() as db:
            rows = db.execute(
                "SELECT * FROM results WHERE run_id = ? ORDER BY position",
                (run_id,),
            ).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            record["seed_path"] = json.loads(record["seed_path"])
            raw_identity = record.pop("identity_json")
            record["identity"] = (
                json.loads(raw_identity) if raw_identity else None
            )
            out.append(record)
        return out

    def flights_for(self, run_id_or_prefix: str) -> List[Dict[str, Any]]:
        """Flight-dump rows registered under a run."""
        run_id = self.resolve(run_id_or_prefix)
        with self._connect() as db:
            rows = db.execute(
                "SELECT * FROM flights WHERE run_id = ? ORDER BY path", (run_id,)
            ).fetchall()
        return [dict(row) for row in rows]

    # -- span timelines ----------------------------------------------------------

    def record_spans(
        self, run_id: str, timeline: Dict[str, Any]
    ) -> str:
        """Store a run's merged span timeline; returns its blob sha.

        The timeline is a :meth:`repro.observe.spans.FleetTimeline.to_dict`
        payload: deterministic span records plus the labelled wall-clock
        sidecar.  One timeline per run id (re-recording replaces it —
        same idempotence as :meth:`record_run`).
        """
        timeline_sha = self.store.put_bytes(
            json.dumps(timeline, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        )
        with self._connect() as db:
            db.execute(
                "INSERT OR REPLACE INTO spans (run_id, recorded_at, trace_id, "
                "span_count, timeline_sha) VALUES (?, ?, ?, ?, ?)",
                (
                    run_id,
                    _utc_now(),
                    timeline.get("trace_id"),
                    len(timeline.get("spans", [])),
                    timeline_sha,
                ),
            )
        return timeline_sha

    def spans_for(self, run_id_or_prefix: str) -> Optional[Dict[str, Any]]:
        """The stored span timeline for a run, or ``None`` if unrecorded."""
        run_id = self.resolve(run_id_or_prefix)
        with self._connect() as db:
            row = db.execute(
                "SELECT timeline_sha FROM spans WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        return json.loads(self.store.get_bytes(row["timeline_sha"]))

    # -- trajectories ------------------------------------------------------------

    def append_trajectory_point(self, bench: str, point: Dict[str, Any]) -> int:
        """Append one point to a bench trajectory; returns its sequence."""
        with self._connect() as db:
            row = db.execute(
                "SELECT COALESCE(MAX(seq), -1) + 1 AS next FROM trajectories "
                "WHERE bench = ?",
                (bench,),
            ).fetchone()
            seq = int(row["next"])
            db.execute(
                "INSERT INTO trajectories (bench, seq, recorded_at, point_json) "
                "VALUES (?, ?, ?, ?)",
                (bench, seq, _utc_now(), _canonical_json(point)),
            )
        return seq

    def trajectory(self, bench: str) -> List[Dict[str, Any]]:
        """Every recorded point for a bench, oldest first."""
        with self._connect() as db:
            rows = db.execute(
                "SELECT * FROM trajectories WHERE bench = ? ORDER BY seq",
                (bench,),
            ).fetchall()
        return [
            dict(json.loads(row["point_json"]), _seq=row["seq"]) for row in rows
        ]

    def trajectory_benches(self) -> List[str]:
        """The bench names with at least one recorded point."""
        with self._connect() as db:
            rows = db.execute(
                "SELECT DISTINCT bench FROM trajectories ORDER BY bench"
            ).fetchall()
        return [row["bench"] for row in rows]

    # -- summary -----------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for ``repro status --registry``."""
        with self._connect() as db:
            runs = db.execute(
                "SELECT COUNT(*) AS n, "
                "SUM(jobs_total) AS jobs, "
                "SUM(jobs_executed) AS executed, "
                "SUM(jobs_cached) AS cached, "
                "SUM(jobs_resumed) AS resumed, "
                "SUM(jobs_quarantined) AS quarantined "
                "FROM runs"
            ).fetchone()
            flights = db.execute("SELECT COUNT(*) AS n FROM flights").fetchone()
            origin_rows = db.execute(
                "SELECT source, COUNT(*) AS n FROM results GROUP BY source"
            ).fetchall()
        objects, size = self.store.census()
        jobs = int(runs["jobs"] or 0)
        reused = int(runs["cached"] or 0) + int(runs["resumed"] or 0)
        by_origin = {row["source"]: int(row["n"]) for row in origin_rows}
        local_hits = by_origin.get("cache", 0) + by_origin.get("resumed", 0)
        remote_hits = by_origin.get("remote-cache", 0)
        latest: Dict[str, Any] = {}
        for bench in self.trajectory_benches():
            points = self.trajectory(bench)
            latest[bench] = points[-1] if points else None
        return {
            "directory": str(self.directory),
            "runs": int(runs["n"] or 0),
            "jobs": {
                "total": jobs,
                "executed": int(runs["executed"] or 0),
                "cached": int(runs["cached"] or 0),
                "resumed": int(runs["resumed"] or 0),
                "quarantined": int(runs["quarantined"] or 0),
            },
            "dedup_hit_rate": (reused / jobs) if jobs else 0.0,
            # Raw per-job sources ("executed", "cache", "remote",
            # "remote-cache", ...) and the local/remote split of dedup
            # hits, so fleet-wide cache effectiveness is measurable.
            "by_origin": by_origin,
            "dedup_hits": {"local": local_hits, "remote": remote_hits},
            "objects": objects,
            "store_bytes": size,
            "flights": int(flights["n"] or 0),
            "trajectories": latest,
        }
