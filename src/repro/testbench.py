"""The assembled victim machine.

:class:`Machine` wires every substrate together the way the paper's
experimental setup does: a simulated processor on a discrete-event
timeline, the probabilistic fault model grounded in the timing physics,
the kernel MSR driver and cpufreq stack, a module registry, and a seeded
random generator that owns all stochastic behaviour.

Typical use::

    from repro.testbench import Machine
    from repro.cpu import COMET_LAKE

    machine = Machine.build(COMET_LAKE, seed=7)
    report = machine.run_imul_window(core_index=0, iterations=1_000_000)
    assert not report.faulted          # nominal conditions never fault
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cpu.models import CPUModel
from repro.cpu.processor import SimulatedProcessor
from repro.faults.imul import ImulLoop, ImulRunReport
from repro.faults.injector import FaultInjector, WindowOutcome
from repro.faults.margin import FaultModel, OperatingConditions
from repro.faults.workloads import InstructionWorkload
from repro.kernel.cpufreq import CPUFreqDriver, CPUPower
from repro.kernel.module import ModuleRegistry
from repro.kernel.msr_driver import MSRDriver
from repro.kernel.sim import Simulator
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class Machine:
    """A complete simulated victim system."""

    model: CPUModel
    simulator: Simulator
    processor: SimulatedProcessor
    fault_model: FaultModel
    injector: FaultInjector
    msr_driver: MSRDriver
    cpufreq: CPUFreqDriver
    cpupower: CPUPower
    modules: ModuleRegistry
    rng: np.random.Generator
    telemetry: Telemetry = field(default_factory=Telemetry.disabled)
    crash_count: int = field(default=0)
    #: The runtime invariant checker installed on this machine, if any
    #: (see :meth:`install_invariants` and the ``REPRO_VERIFY`` knob).
    verifier: Optional[object] = field(default=None, repr=False)
    #: The seed :meth:`build` assembled this machine from — kept so
    #: post-mortem artifacts can fingerprint an equivalent rebuild.
    build_seed: int = field(default=2024)
    #: The flight recorder bound to this machine, if any (see
    #: :class:`repro.observe.FlightRecorder`).
    flight: Optional[object] = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        model: CPUModel,
        *,
        seed: int = 2024,
        shared_voltage_plane: bool = False,
        telemetry: Optional[Telemetry] = None,
        verify: Optional[bool] = None,
    ) -> "Machine":
        """Assemble a machine for a CPU model with a deterministic seed.

        ``shared_voltage_plane`` switches the processor to the real
        client-part topology where one 0x150 write moves every core's
        voltage (enabling cross-core attack scenarios).

        ``telemetry`` is the single observability hook: pass an enabled
        :class:`~repro.telemetry.Telemetry` and every layer (simulator,
        MSR driver, OCM/P-state hooks, regulators, fault injector, the
        polling module once loaded) records metrics and trace events on
        the simulated timeline.  Defaults to the shared disabled
        instance, whose instruments are no-ops.

        ``verify`` installs a :class:`repro.verify.InvariantChecker` on
        the assembled machine; the default ``None`` consults the
        ``REPRO_VERIFY`` environment knob (off unless set), so existing
        callers pay nothing.
        """
        telemetry = telemetry or NULL_TELEMETRY
        simulator = Simulator(telemetry=telemetry)
        processor = SimulatedProcessor(
            model,
            clock=simulator.clock(),
            shared_voltage_plane=shared_voltage_plane,
            telemetry=telemetry,
        )
        fault_model = FaultModel(model)
        rng = np.random.default_rng(seed)
        injector = FaultInjector(
            fault_model, rng, telemetry=telemetry, clock=simulator.clock()
        )
        msr_driver = MSRDriver(processor, simulator=simulator, telemetry=telemetry)
        cpufreq = CPUFreqDriver(processor)
        machine = cls(
            model=model,
            simulator=simulator,
            processor=processor,
            fault_model=fault_model,
            injector=injector,
            msr_driver=msr_driver,
            cpufreq=cpufreq,
            cpupower=CPUPower(cpufreq),
            modules=ModuleRegistry(),
            rng=rng,
            telemetry=telemetry,
            build_seed=int(seed),
        )
        if verify is None:
            from repro.verify import verify_enabled_from_env

            verify = verify_enabled_from_env()
        if verify:
            machine.install_invariants()
        return machine

    def install_invariants(self, checker: Optional[object] = None) -> object:
        """Attach a runtime invariant checker to every layer's hook.

        Returns the installed :class:`repro.verify.InvariantChecker`
        (also kept on :attr:`verifier`); a fresh checker is built when
        none is passed.
        """
        from repro.verify import InvariantChecker

        if checker is None:
            checker = InvariantChecker()
        checker.install(self)
        self.verifier = checker
        return checker

    def spec_fingerprint(self) -> dict:
        """JSON-safe identity of this machine's build specification.

        Everything a post-mortem needs to rebuild an equivalent machine:
        model codename, build seed, voltage-plane topology, whether an
        invariant checker is installed — plus a content hash over those
        fields so flight-recorder dumps from different specs can never be
        conflated.
        """
        import hashlib
        import json

        spec = {
            "codename": self.model.codename,
            "seed": self.build_seed,
            "shared_voltage_plane": bool(
                getattr(self.processor, "shared_voltage_plane", False)
            ),
            "verify": self.verifier is not None,
        }
        blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        spec["sha256"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return spec

    # -- timeline helpers -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self.simulator.now

    def advance(self, delta_s: float) -> None:
        """Run the event queue ``delta_s`` seconds forward."""
        self.simulator.run_until(self.simulator.now + delta_s)

    # -- execution helpers --------------------------------------------------------

    def conditions(self, core_index: int = 0) -> OperatingConditions:
        """Electrical operating point of a core right now."""
        return self.processor.conditions(core_index)

    def run_imul_window(
        self,
        core_index: int = 0,
        iterations: int = 1_000_000,
        *,
        advance_time: bool = True,
    ) -> ImulRunReport:
        """Run the EXECUTE-thread ``imul`` loop on a core right now.

        Conditions are sampled at loop start; with ``advance_time`` the
        simulated clock moves by the loop's wall time afterwards (the
        default, so back-to-back windows see regulator ramps progress).

        Raises
        ------
        MachineCheckError
            If the core sits beyond the crash boundary.
        """
        loop = ImulLoop(iterations)
        conditions = self.conditions(core_index)
        report = loop.run(self.injector, conditions)
        if advance_time:
            self.advance(loop.duration_s(conditions.frequency_ghz))
        return report

    def run_workload_window(
        self,
        workload: InstructionWorkload,
        ops: int,
        core_index: int = 0,
        *,
        advance_time: bool = True,
    ) -> WindowOutcome:
        """Run an arbitrary instruction workload window on a core."""
        conditions = self.conditions(core_index)
        outcome = workload.execute(self.injector, conditions, ops)
        if advance_time:
            self.advance(workload.duration_s(ops, conditions.frequency_ghz))
        return outcome

    # -- crash handling --------------------------------------------------------------

    def reboot(self, settle_s: float = 0.0) -> None:
        """Recover from a machine check: reset hardware state.

        Kernel modules stay registered (they reload from initramfs on a
        real machine); the MSR and regulator state is wiped.
        """
        if self.flight is not None:
            # Snapshot the pre-crash trace tail before hardware state is
            # wiped (opt-in: characterization sweeps crash by design).
            self.flight.on_crash(self)
        self.processor.reboot()
        self.crash_count += 1
        if settle_s > 0:
            self.advance(settle_s)

    # -- convenience DVFS actions (the attacker/benign-user surface) -----------------

    def set_frequency(self, frequency_ghz: float, *, core_index: Optional[int] = None) -> None:
        """Pin core(s) to a frequency through the cpupower utility."""
        self.cpupower.frequency_set(frequency_ghz, core_index=core_index)

    def write_voltage_offset(self, offset_mv: float, core_index: int = 0) -> bool:
        """Write a core-plane voltage offset through MSR 0x150 (Algo 1).

        Returns ``False`` when a microcode/MSR-level guard dropped or
        clamped away the write.
        """
        from repro.core.encoding import offset_voltage

        value = offset_voltage(offset_mv, plane=0)
        return self.msr_driver.write(core_index, 0x150, value)
