"""Published DVFS fault attacks, re-implemented against the substrate.

* :mod:`repro.attacks.plundervolt` — undervolt-driven RSA-CRT key
  extraction (plus the paper's own ``imul``-campaign evaluation shape);
* :mod:`repro.attacks.voltjockey` — the frequency-jump-onto-undervolt
  ordering, the hardest case for a polling defense;
* :mod:`repro.attacks.v0ltpwn` — enclave computation-integrity attack on
  vector multiplies;
* :mod:`repro.attacks.rsa_crt` — the in-enclave RSA-CRT signer and the
  Bellcore gcd extraction;
* :mod:`repro.attacks.aes` / :mod:`repro.attacks.aes_dfa` — AES-128 under
  fault injection and Piret-Quisquater differential fault analysis;
* :mod:`repro.attacks.search` — the adversarial (frequency, voltage)
  space search of observation O3.
"""

from repro.attacks.aes import (
    DFAState,
    FaultableAES,
    diff_group,
    encrypt_block,
    expand_key,
    invert_key_schedule,
)
from repro.attacks.aes_dfa import AESDFAAttack, AESDFAConfig
from repro.attacks.base import AttackOutcome, DVFSAttack
from repro.attacks.plundervolt import ImulCampaign, PlundervoltAttack, PlundervoltConfig
from repro.attacks.rsa_crt import (
    BellcoreResult,
    RSACRTSigner,
    RSAKey,
    bellcore_extract,
    generate_prime,
    is_probable_prime,
)
from repro.attacks.search import OffsetSearch, SearchPoint
from repro.attacks.v0ltpwn import V0ltpwnAttack, V0ltpwnConfig, VectorChecksumPayload
from repro.attacks.voltjockey import VoltJockeyAttack, VoltJockeyConfig

__all__ = [
    "DFAState",
    "FaultableAES",
    "diff_group",
    "encrypt_block",
    "expand_key",
    "invert_key_schedule",
    "AESDFAAttack",
    "AESDFAConfig",
    "AttackOutcome",
    "DVFSAttack",
    "ImulCampaign",
    "PlundervoltAttack",
    "PlundervoltConfig",
    "BellcoreResult",
    "RSACRTSigner",
    "RSAKey",
    "bellcore_extract",
    "generate_prime",
    "is_probable_prime",
    "OffsetSearch",
    "SearchPoint",
    "V0ltpwnAttack",
    "V0ltpwnConfig",
    "VectorChecksumPayload",
    "VoltJockeyAttack",
    "VoltJockeyConfig",
]
