"""RSA-CRT signing and the Bellcore fault attack.

Plundervolt's flagship weaponization: fault one half of an RSA-CRT
signature computed *inside an enclave* and factor the modulus from the
faulty signature.  If the fault corrupts ``s_p`` (the exponentiation mod
``p``) but not ``s_q``, the faulty signature ``s'`` satisfies

    s'^e == m  (mod q)     but     s'^e != m  (mod p)

so ``gcd(s'^e - m mod n, n) == q`` reveals a prime factor — the Bellcore
/ Lenstra observation.

The signer runs every modular multiplication through the enclave's
:class:`~repro.faults.alu.FaultableALU`, so the attack's success is
entirely governed by the core's live operating conditions: in a safe
state signatures are always correct; in an unsafe state a few signing
attempts suffice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AttackError, ConfigurationError
from repro.faults.alu import FaultableALU

# -- deterministic prime generation ------------------------------------------

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def is_probable_prime(candidate: int, rng: np.random.Generator, *, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random bases."""
    if candidate < 2:
        return False
    for p in _SMALL_PRIMES:
        if candidate % p == 0:
            return candidate == p
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        # Draw a base in [2, candidate-2]; numpy integers are bounded to
        # int64, so build wide bases from raw bytes instead.
        width = max(1, (candidate.bit_length() + 7) // 8)
        a = 2 + int.from_bytes(rng.bytes(width), "big") % (candidate - 3)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Deterministically (per seeded rng) generate a ``bits``-bit prime."""
    if bits < 8:
        raise ConfigurationError("prime size must be at least 8 bits")
    while True:
        candidate = int.from_bytes(rng.bytes(bits // 8), "big")
        candidate |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(candidate, rng):
            return candidate


# -- the key and signer ---------------------------------------------------------


@dataclass(frozen=True)
class RSAKey:
    """An RSA key with CRT components."""

    p: int
    q: int
    n: int
    e: int
    d: int
    dp: int
    dq: int
    qinv: int

    @classmethod
    def generate(cls, bits: int = 512, *, seed: int = 1337, e: int = 65537) -> "RSAKey":
        """Generate a ``bits``-bit RSA key deterministically from a seed."""
        rng = np.random.default_rng(seed)
        half = bits // 2
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(half, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if math.gcd(e, phi) != 1:
                continue
            d = pow(e, -1, phi)
            return cls(
                p=p,
                q=q,
                n=p * q,
                e=e,
                d=d,
                dp=d % (p - 1),
                dq=d % (q - 1),
                qinv=pow(q, -1, p),
            )


class RSACRTSigner:
    """Signs with the CRT optimisation on a faultable ALU.

    This is the *enclave payload*: ``sign`` takes the ALU first so it can
    be passed directly to :meth:`~repro.sgx.enclave.Enclave.ecall`.
    """

    def __init__(self, key: RSAKey) -> None:
        self.key = key

    def sign(self, alu: FaultableALU, message: int) -> int:
        """CRT signature ``m^d mod n``, every multiply faultable."""
        key = self.key
        m = message % key.n
        s_p = alu.modexp(m % key.p, key.dp, key.p)
        s_q = alu.modexp(m % key.q, key.dq, key.q)
        # Garner recombination: s = s_q + q * (qinv * (s_p - s_q) mod p)
        h = alu.modmul(key.qinv, (s_p - s_q) % key.p, key.p)
        return (s_q + alu.bigmul(key.q, h)) % key.n

    def verify(self, message: int, signature: int) -> bool:
        """Public-key verification (runs outside the enclave; no faults)."""
        return pow(signature, self.key.e, self.key.n) == message % self.key.n


# -- the weaponization ------------------------------------------------------------


@dataclass(frozen=True)
class BellcoreResult:
    """Outcome of factoring from a faulty signature."""

    factor: int
    cofactor: int

    def factors(self) -> tuple:
        """The recovered (p, q) in ascending order."""
        return tuple(sorted((self.factor, self.cofactor)))


def bellcore_extract(n: int, e: int, message: int, faulty_signature: int) -> Optional[BellcoreResult]:
    """Factor ``n`` from a faulty CRT signature (Bellcore attack).

    Returns ``None`` when the fault pattern is not exploitable (e.g. both
    CRT halves faulted, or the recombination was corrupted into garbage
    sharing no structure with ``n``).
    """
    candidate = math.gcd((pow(faulty_signature, e, n) - message) % n, n)
    if candidate in (1, n):
        return None
    return BellcoreResult(factor=candidate, cofactor=n // candidate)


def assert_key_recovered(key: RSAKey, result: BellcoreResult) -> None:
    """Raise unless the Bellcore result matches the victim key."""
    if result.factors() != tuple(sorted((key.p, key.q))):
        raise AttackError("recovered factors do not match the victim key")
