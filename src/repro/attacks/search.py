"""Adversarial search over the (frequency, voltage) space.

Observation O3: what enables DVFS attacks is that the adversary can
"search through the entire space of frequency/voltage pairs which lead to
DVFS faults on the victim system".  This module is that search — the
attacker-side mirror of the defender's Algo 2.  Attacks use it to find a
working operating point; under a deployed countermeasure the search comes
back empty, which is exactly how prevention manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import MachineCheckError
from repro.testbench import Machine


@dataclass(frozen=True)
class SearchPoint:
    """One probed operating point and what the attacker saw."""

    frequency_ghz: float
    offset_mv: int
    faults: int
    crashed: bool


@dataclass
class OffsetSearch:
    """Descend undervolt offsets at a frequency until faults appear.

    Parameters
    ----------
    machine:
        The victim system (the attacker is privileged on it).
    frequency_ghz:
        Core frequency to pin during the search.
    start_mv / stop_mv / step_mv:
        Offset descent range (negative mV), shallow to deep.
    probe_iterations:
        ``imul`` iterations per probe window.
    core_index:
        Core under attack.
    """

    machine: Machine
    frequency_ghz: float
    start_mv: int = -50
    stop_mv: int = -300
    step_mv: int = 5
    probe_iterations: int = 200_000
    core_index: int = 0
    max_crashes: int = 3
    probes: List[SearchPoint] = field(default_factory=list)
    #: Core frequency observed before the scan pinned its own, so
    #: :meth:`restore` can put the victim back where it found it.
    _pre_scan_ghz: Optional[float] = field(default=None, init=False, repr=False)

    def find_faulting_offset(self) -> Optional[int]:
        """Return the shallowest offset that produced faults, or None.

        Each probe: pin the frequency, write the offset through Algo 1,
        wait out the regulator, run the probe window.  Crashes are
        tolerated up to ``max_crashes`` (the machine reboots); a deployed
        countermeasure makes every probe come back clean, ending the
        search with None.
        """
        settle = self.machine.model.regulator_latency_s * 1.2
        crashes = 0
        self._pre_scan_ghz = self.machine.conditions(self.core_index).frequency_ghz
        self.machine.cpupower.frequency_set(self.frequency_ghz, core_index=self.core_index)
        for offset in range(self.start_mv, self.stop_mv - 1, -self.step_mv):
            self.machine.write_voltage_offset(offset, self.core_index)
            self.machine.advance(settle)
            try:
                report = self.machine.run_imul_window(
                    self.core_index, iterations=self.probe_iterations
                )
            except MachineCheckError:
                self.probes.append(SearchPoint(self.frequency_ghz, offset, 0, True))
                crashes += 1
                self.machine.reboot(settle_s=settle)
                self.machine.cpupower.frequency_set(
                    self.frequency_ghz, core_index=self.core_index
                )
                if crashes >= self.max_crashes:
                    return None
                continue
            self.probes.append(
                SearchPoint(self.frequency_ghz, offset, report.fault_count, False)
            )
            if report.fault_count > 0:
                return offset
        return None

    def restore(self) -> None:
        """Put the core back to a zero offset and its pre-scan frequency.

        Covering the tracks means undoing *both* pins the search left
        behind: the voltage offset and the attacker's frequency pin.
        """
        self.machine.write_voltage_offset(0, self.core_index)
        if self._pre_scan_ghz is not None:
            self.machine.cpupower.frequency_set(
                self._pre_scan_ghz, core_index=self.core_index
            )
        self.machine.advance(self.machine.model.regulator_latency_s * 1.2)


@dataclass
class AttackSurfaceScan:
    """The full 2-D enumeration of observation O3.

    The paper's root-cause observation is that an adversary can "search
    through the entire space of frequency/voltage pairs which lead to
    DVFS faults".  This scan performs exactly that search through the
    public interfaces and reports the machine's *attack surface*: the set
    of (frequency, offset) pairs at which the adversary observed faults.
    Against a deployed countermeasure the surface collapses to zero —
    the paper's prevention claim expressed as a measure.

    Parameters
    ----------
    machine:
        The victim system.
    frequencies_ghz:
        Frequencies to scan (defaults to every fourth table entry).
    offsets_mv:
        Offsets to scan at each frequency, shallow to deep.
    probe_iterations:
        ``imul`` iterations per probe window.
    """

    machine: Machine
    frequencies_ghz: Optional[List[float]] = None
    offsets_mv: Optional[List[int]] = None
    probe_iterations: int = 300_000
    core_index: int = 0
    points: List[SearchPoint] = field(default_factory=list)

    def run(self) -> "AttackSurfaceScan":
        """Scan the grid; crashes reboot the box and end that frequency."""
        pre_scan_ghz = self.machine.conditions(self.core_index).frequency_ghz
        table = self.machine.model.frequency_table
        frequencies = (
            self.frequencies_ghz
            if self.frequencies_ghz is not None
            else list(table.frequencies_ghz())[::4]
        )
        offsets = (
            self.offsets_mv
            if self.offsets_mv is not None
            else list(range(-40, -301, -20))
        )
        settle = self.machine.model.regulator_latency_s * 1.2
        for frequency in frequencies:
            self.machine.cpupower.frequency_set(frequency, core_index=self.core_index)
            for offset in offsets:
                self.machine.write_voltage_offset(offset, self.core_index)
                self.machine.advance(settle)
                try:
                    report = self.machine.run_imul_window(
                        self.core_index, iterations=self.probe_iterations
                    )
                except MachineCheckError:
                    self.points.append(SearchPoint(frequency, offset, 0, True))
                    self.machine.reboot(settle_s=settle)
                    self.machine.cpupower.frequency_set(
                        frequency, core_index=self.core_index
                    )
                    break
                self.points.append(
                    SearchPoint(frequency, offset, report.fault_count, False)
                )
            self.machine.write_voltage_offset(0, self.core_index)
            self.machine.advance(settle)
        # A post-scan victim must run at its pre-scan frequency: leaving
        # the last scanned pin in place is itself an observable DVFS
        # side effect (and skews any experiment that reuses the machine).
        self.machine.cpupower.frequency_set(pre_scan_ghz, core_index=self.core_index)
        self.machine.advance(settle)
        return self

    def faulting_points(self) -> List[SearchPoint]:
        """Grid points where exploitable faults were observed."""
        return [p for p in self.points if p.faults > 0]

    def crash_points(self) -> List[SearchPoint]:
        """Grid points that crashed the machine."""
        return [p for p in self.points if p.crashed]

    @property
    def attack_surface(self) -> int:
        """Number of exploitable (frequency, offset) pairs found."""
        return len(self.faulting_points())
