"""The AES-DFA key-extraction campaign.

The attack loop mirrors the real Plundervolt AES-NI procedure: pin the
frequency, undervolt into the fault band, trigger enclave encryptions of
a fixed plaintext, keep the ciphertexts whose difference pattern matches
a round-9 single-byte fault, and feed them to the Piret-Quisquater DFA
until the last round key is pinned; invert the key schedule to recover
the master key.

Simulation note — statistical acceleration: faults are rare per
encryption (order 1e-3 at fault-band depth), so the campaign would need
~10^5 encryptions.  Instead of executing each clean encryption, the
campaign samples the *waiting time to the next faulty encryption* from
the exact geometric distribution implied by the core's live per-round
fault probability, charges that much simulated time, and then runs only
the faulty encryption concretely.  The distribution of (number of
encryptions, fault round, fault byte) is identical to the naive loop;
under a deployed countermeasure the per-encryption probability is zero
and the budget simply drains — exactly as the naive loop would behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.aes import (
    DFAState,
    _encrypt_with_schedule,
    diff_group,
    encrypt_block,
    expand_key,
)
from repro.attacks.base import AttackOutcome, DVFSAttack
from repro.attacks.search import OffsetSearch
from repro.testbench import Machine

#: Byte-operations per AES round window (state size).
OPS_PER_ROUND = 16
ROUNDS = 10

#: Wall time of one in-enclave AES encryption (cycles / frequency is
#: refined at run time; this is the cycle count).
CYCLES_PER_ENCRYPTION = 200.0


@dataclass
class AESDFAConfig:
    """Campaign parameters."""

    frequency_ghz: float
    offset_mv: Optional[int] = None
    depth_bonus_mv: int = 10
    #: Total encryption budget before the attacker gives up.
    max_encryptions: int = 2_000_000
    #: Encryptions attempted per timeslice (offset re-written between
    #: slices, so a deployed countermeasure gets to interfere).
    slice_encryptions: int = 100_000
    core_index: int = 0


class AESDFAAttack(DVFSAttack):
    """Undervolt-driven AES key extraction from an enclave."""

    name = "aes-dfa"

    def __init__(self, machine: Machine, key: bytes, config: AESDFAConfig) -> None:
        self._machine = machine
        self._key = key  # held by the victim enclave; never read directly
        self._round_keys = expand_key(key)
        self._config = config
        self._plaintext = bytes(range(16))

    def _per_encryption_fault_probability(self) -> float:
        """Probability that at least one round of one encryption faults
        at the core's *current* conditions."""
        conditions = self._machine.conditions(self._config.core_index)
        p_op = self._machine.fault_model.fault_probability(
            conditions.frequency_ghz, conditions.voltage_volts, instruction="aesenc"
        )
        if p_op <= 0.0:
            return 0.0
        p_round = 1.0 - (1.0 - p_op) ** OPS_PER_ROUND
        return 1.0 - (1.0 - p_round) ** ROUNDS

    def _is_crashing(self) -> bool:
        conditions = self._machine.conditions(self._config.core_index)
        return self._machine.fault_model.is_crash(
            conditions.frequency_ghz, conditions.voltage_volts
        )

    def mount(self) -> AttackOutcome:
        """Run the campaign; success == master key recovered."""
        outcome = AttackOutcome(attack=self.name, succeeded=False)
        machine = self._machine
        config = self._config
        start_time = machine.now
        rng = machine.rng

        offset = config.offset_mv
        if offset is None:
            search = OffsetSearch(
                machine, frequency_ghz=config.frequency_ghz, core_index=config.core_index
            )
            offset = search.find_faulting_offset()
            outcome.crashes += sum(1 for p in search.probes if p.crashed)
            if offset is None:
                outcome.note("no faulting operating point found")
                outcome.duration_s = machine.now - start_time
                return outcome
            offset -= config.depth_bonus_mv

        correct = encrypt_block(self._key, self._plaintext)
        dfa = DFAState()
        settle = machine.model.regulator_latency_s * 1.2
        machine.cpupower.frequency_set(config.frequency_ghz, core_index=config.core_index)
        encryptions_left = config.max_encryptions

        while encryptions_left > 0 and not dfa.complete:
            if not machine.write_voltage_offset(offset, config.core_index):
                outcome.writes_blocked += 1
            machine.advance(settle)
            if self._is_crashing():
                outcome.crashes += 1
                machine.reboot(settle_s=settle)
                machine.cpupower.frequency_set(
                    config.frequency_ghz, core_index=config.core_index
                )
                continue
            frequency = machine.conditions(config.core_index).frequency_ghz
            t_encryption = CYCLES_PER_ENCRYPTION / (frequency * 1e9)
            budget = min(config.slice_encryptions, encryptions_left)
            probability = self._per_encryption_fault_probability()
            done = 0
            while done < budget:
                if probability <= 0.0:
                    done = budget
                    break
                waiting = int(rng.geometric(probability))
                if done + waiting > budget:
                    done = budget
                    break
                done += waiting
                # Concretely execute the faulty encryption: uniform round,
                # uniform byte, uniform non-zero delta.
                fault_round = int(rng.integers(1, ROUNDS + 1))
                fault_index = int(rng.integers(0, 16))
                delta = int(rng.integers(1, 256))
                faulty = _encrypt_with_schedule(
                    self._round_keys,
                    self._plaintext,
                    fault_round=fault_round,
                    fault=(fault_index, delta),
                )
                outcome.faults_observed += 1
                if diff_group(correct, faulty) is not None:
                    dfa.absorb(correct, faulty)
                if dfa.complete:
                    break
            encryptions_left -= done
            outcome.attempts += done
            machine.advance(done * t_encryption)

        machine.write_voltage_offset(0, config.core_index)
        machine.advance(settle)
        if dfa.complete:
            recovered = dfa.recover_master_key()
            outcome.succeeded = recovered == self._key
            outcome.recovered_secret = recovered
            outcome.note(
                f"AES key recovered after {outcome.attempts} encryptions, "
                f"{outcome.faults_observed} faulty ciphertexts"
            )
        outcome.duration_s = machine.now - start_time
        return outcome
