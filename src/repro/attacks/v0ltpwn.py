"""V0LTpwn (USENIX Security 2020): corrupting enclave computation state.

Where Plundervolt targets cryptographic arithmetic for key extraction,
V0LTpwn aims at *integrity of computation*: flipping bits in the results
of vector (packed-multiply) instructions so an enclave computes — and
acts on — wrong values.  We model the victim as an enclave payload that
folds a stream of packed multiplies into a checksum and compares it with
the known-good value; the attack succeeds when the comparison breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Optional

import numpy as np

from repro.errors import MachineCheckError
from repro.attacks.base import AttackOutcome, DVFSAttack
from repro.attacks.search import OffsetSearch
from repro.faults.alu import FaultableALU
from repro.sgx.enclave import Enclave
from repro.testbench import Machine

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class ChecksumWitness:
    """Result of one enclave checksum computation."""

    checksum: int
    ops: int
    faulted_ops: int

    def matches(self, expected: int) -> bool:
        """Whether the computation retained its integrity."""
        return self.checksum == expected


class VectorChecksumPayload:
    """The enclave-side victim: xor-fold of packed multiplies.

    The payload issues ``ops`` packed-double multiplies through the fault
    injector (sensitivity of ``vmulpd``) and xors the products together.
    Faulted products flip bits in the checksum.
    """

    instruction = "vmulpd"

    def __init__(self, ops: int = 262_144, *, seed: int = 99) -> None:
        self.ops = ops
        rng = np.random.default_rng(seed)
        self._operands = [int(v) | 1 for v in rng.integers(1, 1 << 62, size=64)]
        self.expected_checksum = self._fold(flips=())

    def _fold(self, flips) -> int:
        products = [
            (self._operands[i % 64] * self._operands[(i + 1) % 64]) & _MASK64
            for i in range(64)
        ]
        checksum = reduce(lambda a, b: a ^ b, products) & _MASK64
        for bit in flips:
            checksum ^= 1 << bit
        return checksum

    def __call__(self, alu: FaultableALU) -> ChecksumWitness:
        """Run inside the enclave (via ``ecall``)."""
        outcome = alu.injector.run_window(
            alu.conditions_source(), self.ops, instruction=self.instruction
        )
        flips = tuple(event.flipped_bit for event in outcome.events)
        alu.stats.imul_count += self.ops
        alu.stats.fault_count += outcome.fault_count
        return ChecksumWitness(
            checksum=self._fold(flips),
            ops=self.ops,
            faulted_ops=outcome.fault_count,
        )


@dataclass
class V0ltpwnConfig:
    """Campaign parameters."""

    frequency_ghz: float
    offset_mv: Optional[int] = None
    #: Depth added below the search's first faulting offset (see
    #: PlundervoltConfig.depth_bonus_mv).
    depth_bonus_mv: int = 8
    max_attempts: int = 60
    attempt_duration_s: float = 5e-4
    core_index: int = 0


class V0ltpwnAttack(DVFSAttack):
    """Undervolt until the enclave's checksum integrity breaks."""

    name = "v0ltpwn"

    def __init__(
        self,
        machine: Machine,
        enclave: Enclave,
        payload: VectorChecksumPayload,
        config: V0ltpwnConfig,
    ) -> None:
        self._machine = machine
        self._enclave = enclave
        self._payload = payload
        self._config = config

    def mount(self) -> AttackOutcome:
        """Run the campaign; success == a corrupted checksum observed."""
        outcome = AttackOutcome(attack=self.name, succeeded=False)
        machine = self._machine
        config = self._config
        start_time = machine.now
        settle = machine.model.regulator_latency_s * 1.2

        offset = config.offset_mv
        if offset is None:
            search = OffsetSearch(
                machine, frequency_ghz=config.frequency_ghz, core_index=config.core_index
            )
            offset = search.find_faulting_offset()
            outcome.crashes += sum(1 for p in search.probes if p.crashed)
            if offset is None:
                outcome.note("no faulting operating point found")
                outcome.duration_s = machine.now - start_time
                return outcome
            offset -= config.depth_bonus_mv

        machine.cpupower.frequency_set(config.frequency_ghz, core_index=config.core_index)
        for _ in range(config.max_attempts):
            outcome.attempts += 1
            if not machine.write_voltage_offset(offset, config.core_index):
                outcome.writes_blocked += 1
            machine.advance(settle)
            try:
                witness = self._enclave.ecall(self._payload)
            except MachineCheckError:
                outcome.crashes += 1
                machine.reboot(settle_s=settle)
                machine.cpupower.frequency_set(
                    config.frequency_ghz, core_index=config.core_index
                )
                continue
            machine.advance(config.attempt_duration_s)
            outcome.faults_observed += witness.faulted_ops
            if not witness.matches(self._payload.expected_checksum):
                outcome.succeeded = True
                outcome.recovered_secret = witness.checksum
                outcome.note(f"integrity broken after {outcome.attempts} attempts")
                break

        machine.write_voltage_offset(0, config.core_index)
        machine.advance(settle)
        outcome.duration_s = machine.now - start_time
        return outcome
