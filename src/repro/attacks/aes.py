"""AES-128 under fault injection, and Piret-Quisquater DFA key recovery.

Plundervolt's second flagship weaponization (besides RSA-CRT): fault an
AES-NI encryption inside an enclave and recover the key by differential
fault analysis.  A single-byte fault on the state *entering round 9*
propagates — through round 9's SubBytes/ShiftRows/MixColumns and round
10's SubBytes — into exactly four ciphertext bytes whose differences are
related through known MixColumns coefficients; each correct/faulty
ciphertext pair therefore narrows four bytes of the last round key, and
a couple of pairs per column pin the whole key (Piret & Quisquater,
CHES 2003).  Inverting the key schedule yields the master key.

The enclave-side :class:`FaultableAES` executes each round as a fault
window (16 byte-operations of ``aesenc`` sensitivity); faults land in
random rounds, and — exactly like the real attack — only those whose
ciphertext difference pattern matches a round-9 single-byte fault are
kept, the rest are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import AttackError, ConfigurationError
from repro.faults.alu import FaultableALU

# -- AES-128 primitives ------------------------------------------------------

SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d8311504c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f8453d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa851a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d197360814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df8ca1890dbfe6426841992d0fb054bb16"
)
INV_SBOX = bytes(256)
INV_SBOX = bytearray(256)
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i
INV_SBOX = bytes(INV_SBOX)

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

#: MixColumns matrix (row-major).
MC = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))


def gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication with the AES polynomial."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def expand_key(key: bytes) -> List[bytes]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ConfigurationError("AES-128 key must be 16 bytes")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]
            word = [SBOX[b] for b in word]
            word[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], word)])
    return [
        bytes(b for word in words[4 * r : 4 * r + 4] for b in word) for r in range(11)
    ]


def invert_key_schedule(last_round_key: bytes, rounds: int = 10) -> bytes:
    """Walk the AES-128 key schedule backwards from round ``rounds``."""
    if len(last_round_key) != 16:
        raise ConfigurationError("round key must be 16 bytes")
    key = list(last_round_key)
    for r in range(rounds, 0, -1):
        previous = [0] * 16
        for i in range(15, 3, -1):
            previous[i] = key[i] ^ key[i - 4]
        rotated = previous[13], previous[14], previous[15], previous[12]
        substituted = [SBOX[b] for b in rotated]
        substituted[0] ^= RCON[r - 1]
        for i in range(4):
            previous[i] = key[i] ^ substituted[i]
        key = previous
    return bytes(key)


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _shift_rows(state: List[int]) -> None:
    # Column-major layout: index = row + 4*col; row r shifts left by r.
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        for c in range(4):
            state[r + 4 * c] = row[(c + r) % 4]


def _mix_columns(state: List[int]) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        for r in range(4):
            state[r + 4 * c] = (
                gmul(MC[r][0], col[0])
                ^ gmul(MC[r][1], col[1])
                ^ gmul(MC[r][2], col[2])
                ^ gmul(MC[r][3], col[3])
            )


def _add_round_key(state: List[int], round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """Reference AES-128 encryption (no faults)."""
    round_keys = expand_key(key)
    return _encrypt_with_schedule(round_keys, plaintext, fault_round=None, fault=None)


def _encrypt_with_schedule(
    round_keys: Sequence[bytes],
    plaintext: bytes,
    *,
    fault_round: Optional[int],
    fault: Optional[Tuple[int, int]],
) -> bytes:
    """Encrypt, optionally xoring ``fault=(index, delta)`` into the state
    entering ``fault_round`` (1-based)."""
    if len(plaintext) != 16:
        raise ConfigurationError("AES block must be 16 bytes")
    state = list(plaintext)
    _add_round_key(state, round_keys[0])
    for round_index in range(1, 10):
        if fault_round == round_index and fault is not None:
            state[fault[0]] ^= fault[1]
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[round_index])
    if fault_round == 10 and fault is not None:
        state[fault[0]] ^= fault[1]
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


# -- the enclave-side faultable implementation ---------------------------------


class FaultableAES:
    """AES-128 whose rounds execute as fault windows on the live core.

    Each of the 10 rounds is a window of 16 ``aesenc``-sensitivity byte
    operations; if the injector lands a fault in a round's window, one
    random state byte entering that round is corrupted (a random non-zero
    xor).  This matches the single-byte transient upsets Plundervolt
    observed for AES-NI.
    """

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt(self, alu: FaultableALU, plaintext: bytes) -> bytes:
        """Encrypt one block under the core's current conditions."""
        injector = alu.injector
        conditions = alu.conditions_source()
        fault_round: Optional[int] = None
        fault: Optional[Tuple[int, int]] = None
        for round_index in range(1, 11):
            outcome = injector.run_window(conditions, 16, instruction="aesenc")
            alu.stats.imul_count += 16
            if outcome.fault_count and fault_round is None:
                event = outcome.events[0]
                delta = 1 + (event.flipped_bit * 37) % 255  # any non-zero byte
                fault_round = round_index
                fault = (event.op_index % 16, delta)
                alu.stats.fault_count += 1
        return _encrypt_with_schedule(
            self._round_keys, plaintext, fault_round=fault_round, fault=fault
        )


# -- Piret-Quisquater differential fault analysis --------------------------------

#: For a fault in round-9-input column ``c`` the affected ciphertext byte
#: indices (after round 9 ShiftRows moves the column and round 10
#: ShiftRows spreads it).
def _ciphertext_group(column_after_sr9: int) -> Tuple[int, ...]:
    return tuple(
        row + 4 * ((column_after_sr9 - row) % 4) for row in range(4)
    )


CIPHERTEXT_GROUPS: Tuple[Tuple[int, ...], ...] = tuple(
    _ciphertext_group(c) for c in range(4)
)


def diff_group(correct: bytes, faulty: bytes) -> Optional[int]:
    """Which ciphertext group differs — or None if the pattern does not
    match a round-9 single-byte fault (wrong round; discard)."""
    differing = {i for i in range(16) if correct[i] != faulty[i]}
    if not differing:
        return None
    for group_index, group in enumerate(CIPHERTEXT_GROUPS):
        if differing == set(group):
            return group_index
    return None


@dataclass
class DFAState:
    """Accumulated key knowledge, per ciphertext group."""

    candidates: Dict[int, List[Set[int]]] = field(default_factory=dict)

    def absorb(self, correct: bytes, faulty: bytes) -> Optional[int]:
        """Fold one correct/faulty pair in; returns the group hit or None.

        Pairs hitting an already-solved group are recognised but skipped
        (no information left to extract).
        """
        group_index = diff_group(correct, faulty)
        if group_index is None:
            return None
        if group_index in self.solved_groups():
            return group_index
        group = CIPHERTEXT_GROUPS[group_index]
        # Precompute, per output byte, the map from S-box input difference
        # to the key candidates producing it — turns the (delta, row)
        # enumeration into O(1) lookups.
        diff_to_keys: List[Dict[int, Set[int]]] = []
        for j in range(4):
            c = correct[group[j]]
            f = faulty[group[j]]
            table: Dict[int, Set[int]] = {}
            for k in range(256):
                table.setdefault(INV_SBOX[c ^ k] ^ INV_SBOX[f ^ k], set()).add(k)
            diff_to_keys.append(table)
        pair_sets: List[Set[int]] = [set(), set(), set(), set()]
        for delta in range(1, 256):
            for fault_row in range(4):
                per_byte = []
                for j in range(4):
                    matches = diff_to_keys[j].get(gmul(MC[j][fault_row], delta))
                    if not matches:
                        break
                    per_byte.append(matches)
                else:
                    for j in range(4):
                        pair_sets[j] |= per_byte[j]
        existing = self.candidates.get(group_index)
        if existing is None:
            self.candidates[group_index] = pair_sets
        else:
            for j in range(4):
                existing[j] &= pair_sets[j]
        return group_index

    def solved_groups(self) -> Set[int]:
        """Groups whose four key bytes are uniquely determined."""
        return {
            g
            for g, sets in self.candidates.items()
            if all(len(s) == 1 for s in sets)
        }

    @property
    def complete(self) -> bool:
        """Whether all 16 bytes of the last round key are pinned."""
        return self.solved_groups() == {0, 1, 2, 3}

    def last_round_key(self) -> bytes:
        """Assemble K10 once :attr:`complete`."""
        if not self.complete:
            raise AttackError("DFA has not converged on all four groups yet")
        key = [0] * 16
        for group_index, sets in self.candidates.items():
            group = CIPHERTEXT_GROUPS[group_index]
            for j in range(4):
                key[group[j]] = next(iter(sets[j]))
        return bytes(key)

    def recover_master_key(self) -> bytes:
        """Invert the key schedule from the recovered K10."""
        return invert_key_schedule(self.last_round_key())
