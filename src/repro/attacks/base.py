"""Common attack interface and outcome records.

Every re-implemented attack (Plundervolt, VoltJockey, V0LTpwn) produces
an :class:`AttackOutcome`, so the prevention benchmarks can tabulate the
same rows for undefended, polling-protected, microcode-protected and
MSR-clamped machines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class AttackOutcome:
    """What an attack campaign achieved."""

    attack: str
    succeeded: bool
    faults_observed: int = 0
    attempts: int = 0
    crashes: int = 0
    writes_blocked: int = 0
    duration_s: float = 0.0
    recovered_secret: Optional[Any] = None
    notes: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Append a free-text observation."""
        self.notes.append(message)

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for tabular reporting."""
        return {
            "attack": self.attack,
            "succeeded": self.succeeded,
            "faults": self.faults_observed,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "writes_blocked": self.writes_blocked,
        }


class DVFSAttack(ABC):
    """Base class for DVFS fault attacks.

    Subclasses bind to a machine (and usually a victim enclave) at
    construction and implement :meth:`mount`.
    """

    #: Attack name used in reports.
    name: str = "dvfs-attack"

    @abstractmethod
    def mount(self) -> AttackOutcome:
        """Run the attack campaign to completion and report the outcome."""
