"""VoltJockey-style attack: exploiting the frequency/voltage *pair*.

VoltJockey (CCS 2019) showed that faults need not come from moving the
voltage under a fixed frequency — moving the *frequency* under a fixed
(already reduced) voltage violates the same inequality (Eq. 3), because
the two parameters are independently controllable (observation O3).

Our adaptation to the Intel substrate is the adversarially *ordered*
variant, and it is deliberately the hardest case for a polling defense:

1. at a low frequency, apply an undervolt that is **safe for that
   frequency** — the polling module correctly leaves it alone;
2. wait for the regulator to actually apply it;
3. jump the core to a high frequency (a single ``wrmsr`` to 0x199 for a
   privileged attacker — no slow path to hide the transition in);
4. the *already applied* voltage is now unsafe for the new frequency, and
   the victim faults until the next poll detects the pair and the (fast)
   raise settles.

Unlike the 0x150 route — where the polling period undercuts the
regulator's apply delay and prevention is total — this ordering leaves a
window of one polling period plus the raise latency.  Quantifying that
window is the point of the turnaround ablation, and closing it is what
the Sec. 5 microcode/MSR deployments are for (they bound the offset
itself, making step 1 impossible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AttackError, MachineCheckError
from repro.attacks.base import AttackOutcome, DVFSAttack
from repro.testbench import Machine


@dataclass
class VoltJockeyConfig:
    """Campaign parameters."""

    low_frequency_ghz: float
    high_frequency_ghz: float
    #: Offset that is safe at the low frequency but unsafe at the high
    #: one; None derives it from attacker reconnaissance.
    offset_mv: Optional[int] = None
    #: Victim instructions executed after the frequency jump, in chunks so
    #: the polling module can interleave.
    victim_iterations: int = 4_000_000
    chunk_iterations: int = 100_000
    repetitions: int = 5
    core_index: int = 0


class VoltJockeyAttack(DVFSAttack):
    """The frequency-jump-onto-undervolt campaign."""

    name = "voltjockey"

    def __init__(self, machine: Machine, config: VoltJockeyConfig) -> None:
        if config.high_frequency_ghz <= config.low_frequency_ghz:
            raise AttackError("the attack requires a jump to a higher frequency")
        self._machine = machine
        self._config = config

    def _recon_offset(self) -> Optional[int]:
        """Attacker reconnaissance: an offset safe at f_low, faulting at f_high.

        Uses the attacker's own (ground-truth-free) probing: find the
        first faulting offset at the high frequency, go 10 mV deeper to
        sit inside the fault band, and confirm the low frequency tolerates
        it.  All probing happens through the same public interfaces.
        """
        from repro.attacks.search import OffsetSearch

        machine = self._machine
        config = self._config
        high_search = OffsetSearch(
            machine, frequency_ghz=config.high_frequency_ghz, core_index=config.core_index
        )
        onset = high_search.find_faulting_offset()
        high_search.restore()
        if onset is None:
            return None
        candidate = onset - 10
        low_search = OffsetSearch(
            machine,
            frequency_ghz=config.low_frequency_ghz,
            start_mv=candidate,
            stop_mv=candidate,
            step_mv=1,
            core_index=config.core_index,
        )
        low_fault = low_search.find_faulting_offset()
        low_search.restore()
        if low_fault is not None:
            return None  # candidate is not safe at the low frequency
        return candidate

    def mount(self) -> AttackOutcome:
        """Run the frequency-jump campaign."""
        outcome = AttackOutcome(attack=self.name, succeeded=False)
        machine = self._machine
        config = self._config
        start_time = machine.now
        settle = machine.model.regulator_latency_s * 1.2

        offset = config.offset_mv
        if offset is None:
            offset = self._recon_offset()
            if offset is None:
                outcome.note("reconnaissance found no cross-frequency offset")
                outcome.duration_s = machine.now - start_time
                return outcome
            outcome.note(f"cross-frequency offset: {offset} mV")

        for _ in range(config.repetitions):
            outcome.attempts += 1
            # 1-2: pre-position a low-frequency-safe undervolt, fully applied.
            machine.cpupower.frequency_set(
                config.low_frequency_ghz, core_index=config.core_index
            )
            if not machine.write_voltage_offset(offset, config.core_index):
                outcome.writes_blocked += 1
            machine.advance(settle)
            applied = machine.processor.core(config.core_index).applied_offset_mv(machine.now)
            if applied > offset + 1:
                outcome.note(
                    f"pre-positioning defeated: applied offset {applied:.0f} mV "
                    f"instead of {offset} mV"
                )
                continue
            # 3: the frequency jump (privileged direct wrmsr, instant).
            ratio = round(config.high_frequency_ghz * 10)
            machine.processor.wrmsr(config.core_index, 0x199, (ratio & 0xFF) << 8)
            # 4: victim executes in chunks while the defense reacts.
            executed = 0
            while executed < config.victim_iterations:
                chunk = min(config.chunk_iterations, config.victim_iterations - executed)
                try:
                    report = machine.run_imul_window(config.core_index, iterations=chunk)
                except MachineCheckError:
                    outcome.crashes += 1
                    machine.reboot(settle_s=settle)
                    break
                outcome.faults_observed += report.fault_count
                executed += chunk
            # Restore for the next repetition.
            machine.write_voltage_offset(0, config.core_index)
            machine.advance(settle)

        outcome.succeeded = outcome.faults_observed > 0
        outcome.duration_s = machine.now - start_time
        return outcome
