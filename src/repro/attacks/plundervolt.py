"""Plundervolt (S&P 2020): software-based undervolting fault injection.

The attack, as mounted against our simulated substrate:

1. pin the core frequency (``cpupower``, the slow privileged path);
2. search downward through negative voltage offsets written to MSR 0x150
   (Algo 1 encoding) until ``imul`` faults appear — the attacker's mirror
   of the defender's characterization;
3. weaponise: repeatedly trigger an in-enclave RSA-CRT signature at the
   faulting operating point until one signature is corrupted, then factor
   the modulus with the Bellcore gcd.

Against the polling countermeasure the unsafe *target* written to 0x150
is detected and rewritten before the regulator ever applies it, so step 2
finds nothing and step 3 only produces correct signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MachineCheckError
from repro.attacks.base import AttackOutcome, DVFSAttack
from repro.attacks.rsa_crt import RSACRTSigner, bellcore_extract
from repro.attacks.search import OffsetSearch
from repro.sgx.enclave import Enclave
from repro.testbench import Machine


@dataclass
class PlundervoltConfig:
    """Campaign parameters."""

    frequency_ghz: float
    #: Explicit offset to use; None searches for one first.
    offset_mv: Optional[int] = None
    #: Extra depth (mV) applied below the first faulting offset the search
    #: finds: the onset has a marginal fault rate, so the attacker tunes a
    #: little deeper into the band (but clear of the crash region).
    depth_bonus_mv: int = 8
    #: Give up after this many signing attempts without a faulty signature.
    max_signing_attempts: int = 80
    #: Wall time charged per signing attempt (enclave entry + signature).
    attempt_duration_s: float = 1e-3
    core_index: int = 0
    search_start_mv: int = -50
    search_stop_mv: int = -300


class PlundervoltAttack(DVFSAttack):
    """The full key-extraction campaign against an enclave RSA-CRT signer."""

    name = "plundervolt"

    def __init__(
        self,
        machine: Machine,
        enclave: Enclave,
        signer: RSACRTSigner,
        message: int,
        config: PlundervoltConfig,
    ) -> None:
        self._machine = machine
        self._enclave = enclave
        self._signer = signer
        self._message = message
        self._config = config

    def mount(self) -> AttackOutcome:
        """Run the campaign; success == RSA factor recovered."""
        outcome = AttackOutcome(attack=self.name, succeeded=False)
        config = self._config
        machine = self._machine
        start_time = machine.now

        offset = config.offset_mv
        if offset is None:
            search = OffsetSearch(
                machine,
                frequency_ghz=config.frequency_ghz,
                start_mv=config.search_start_mv,
                stop_mv=config.search_stop_mv,
                core_index=config.core_index,
            )
            offset = search.find_faulting_offset()
            outcome.crashes += sum(1 for p in search.probes if p.crashed)
            if offset is None:
                outcome.note(
                    "offset search found no faulting operating point "
                    f"({len(search.probes)} probes)"
                )
                outcome.duration_s = machine.now - start_time
                return outcome
            offset -= config.depth_bonus_mv
            outcome.note(
                f"faulting offset found: {offset + config.depth_bonus_mv} mV "
                f"@ {config.frequency_ghz} GHz; attacking at {offset} mV"
            )

        settle = machine.model.regulator_latency_s * 1.2
        machine.cpupower.frequency_set(config.frequency_ghz, core_index=config.core_index)
        for _ in range(config.max_signing_attempts):
            outcome.attempts += 1
            stored = machine.write_voltage_offset(offset, config.core_index)
            if not stored:
                outcome.writes_blocked += 1
            machine.advance(settle)
            try:
                signature = self._enclave.ecall(self._signer.sign, self._message)
            except MachineCheckError:
                outcome.crashes += 1
                machine.reboot(settle_s=settle)
                machine.cpupower.frequency_set(
                    config.frequency_ghz, core_index=config.core_index
                )
                continue
            machine.advance(config.attempt_duration_s)
            if self._signer.verify(self._message, signature):
                continue  # correct signature, no exploitable fault
            outcome.faults_observed += 1
            result = bellcore_extract(
                self._signer.key.n, self._signer.key.e, self._message, signature
            )
            if result is None:
                outcome.note("faulty signature was not Bellcore-exploitable; retrying")
                continue
            outcome.succeeded = True
            outcome.recovered_secret = result.factors()
            outcome.note(f"modulus factored after {outcome.attempts} signatures")
            break

        # Cover tracks: restore a zero offset.
        machine.write_voltage_offset(0, config.core_index)
        machine.advance(settle)
        outcome.duration_s = machine.now - start_time
        return outcome


@dataclass
class ImulCampaign(DVFSAttack):
    """The paper's own evaluation shape: EXECUTE-thread faults under attack.

    Re-runs the Algo 2 attack pattern (frequency + undervolt through the
    legitimate interfaces) over a set of operating points and counts the
    ``imul`` faults the victim observes.  With the polling module loaded
    this count is zero — the Sec. 4.3 prevention claim.
    """

    machine: Machine
    frequency_ghz: float
    offsets_mv: tuple
    iterations_per_point: int = 1_000_000
    core_index: int = 0
    name: str = field(default="imul-campaign", init=False)

    def mount(self) -> AttackOutcome:
        """Sweep the points, summing victim-visible faults."""
        outcome = AttackOutcome(attack=self.name, succeeded=False)
        machine = self.machine
        settle = machine.model.regulator_latency_s * 1.2
        start_time = machine.now
        machine.cpupower.frequency_set(self.frequency_ghz, core_index=self.core_index)
        for offset in self.offsets_mv:
            outcome.attempts += 1
            if not machine.write_voltage_offset(int(offset), self.core_index):
                outcome.writes_blocked += 1
            machine.advance(settle)
            try:
                report = machine.run_imul_window(
                    self.core_index, iterations=self.iterations_per_point
                )
            except MachineCheckError:
                outcome.crashes += 1
                machine.reboot(settle_s=settle)
                machine.cpupower.frequency_set(
                    self.frequency_ghz, core_index=self.core_index
                )
                continue
            outcome.faults_observed += report.fault_count
        machine.write_voltage_offset(0, self.core_index)
        machine.advance(settle)
        outcome.succeeded = outcome.faults_observed > 0
        outcome.duration_s = machine.now - start_time
        return outcome
