"""Lease-based campaign coordinator (``repro serve``).

The coordinator owns three pieces of state behind one lock:

* a **job table** — every fingerprinted job ever submitted, with its
  lifecycle state (``pending → leased → done | quarantined``), consumed
  attempt count, and failure history;
* a **lease table** — which worker currently holds which jobs, and the
  monotonic deadline by which it must heartbeat;
* a **result store** — fleet-wide content-addressed dedup
  (:class:`repro.serve.store.ResultStore`).

Robustness semantics deliberately mirror PR-5's in-process supervisor
(:class:`repro.engine.executors.ParallelExecutor`): leasing a job
*consumes* an attempt, so a worker that is SIGKILLed or partitioned
mid-lease simply stops heartbeating, its lease expires, and the jobs are
re-queued at the *front* with their attempt numbers preserved — the next
lease hands out attempt 2, the named seed streams replay, and the retry
is byte-identical to an undisturbed first try.  A job that exhausts its
attempt budget is quarantined with its failure history rather than
poisoning the campaign.

Everything is stdlib: ``ThreadingHTTPServer`` in a daemon thread (the
same pattern as :class:`repro.observe.serve.MetricsServer`), JSON
bodies, and the PR-9 span envelope carried on real HTTP headers.  The
expiry reaper is *lazy* — it runs at the top of every state-mutating
request instead of in a timer thread, which keeps the coordinator
single-clocked and trivially testable (tests advance time by passing a
``clock`` callable).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from repro.errors import ObserveError, ServeError, ServeProtocolError
from repro.observe.openmetrics import OPENMETRICS_CONTENT_TYPE, render_openmetrics
from repro.serve import protocol
from repro.serve.store import ResultStore
from repro.telemetry.registry import Registry

#: Default lease deadline; workers renew at a fraction of this.
DEFAULT_LEASE_TIMEOUT_S = 15.0

#: Default attempt budget when a submission does not name one.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass
class _JobRecord:
    """One fingerprinted job's lifecycle on the coordinator."""

    fingerprint: str
    kind: str
    spec: str  # base64 pickle, exactly as submitted
    max_attempts: int
    state: str = protocol.JOB_PENDING
    attempts: int = 0
    lease_id: Optional[str] = None
    failures: List[Dict[str, Any]] = field(default_factory=list)
    envelope: Dict[str, str] = field(default_factory=dict)


@dataclass
class _Lease:
    """One worker's claim over a set of jobs, valid until ``deadline``."""

    lease_id: str
    worker_id: str
    deadline: float
    fingerprints: Set[str] = field(default_factory=set)


class Coordinator:
    """Fault-tolerant job service over a content-addressed result store."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ServeError("lease_timeout_s must be positive")
        self.store = ResultStore(root)
        self.registry = Registry()
        self.lease_timeout_s = float(lease_timeout_s)
        self._host = host
        self._requested_port = port
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, _JobRecord] = {}
        self._queue: Deque[str] = deque()
        self._leases: Dict[str, _Lease] = {}
        self._workers: Set[str] = set()
        self._chaos: Optional[Dict[str, Any]] = None
        self._lease_serial = 0
        self._server: Optional[_CoordinatorServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the running (or configured) coordinator."""
        return f"http://{self._host}:{self.port}"

    def start(self) -> "Coordinator":
        """Bind and begin serving in a daemon thread."""
        if self._server is not None:
            raise ServeError("coordinator already started")
        try:
            server = _CoordinatorServer(
                (self._host, self._requested_port), _CoordinatorHandler
            )
        except OSError as error:
            raise ObserveError(
                f"cannot bind coordinator to {self._host}:{self._requested_port} "
                f"({error}); pass --port 0 to pick a free ephemeral port"
            ) from error
        server.coordinator = self
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- lease-table mechanics ---------------------------------------------------

    def _reap_expired(self, now: float) -> None:
        """Requeue (or quarantine) the jobs of every overdue lease.

        Called under :attr:`_lock` at the top of each state-mutating
        request.  Mirrors ``ParallelExecutor.recover_broken_pool``: the
        attempt the dead worker consumed stays consumed, the jobs go to
        the *front* of the queue, and a job already at its budget is
        quarantined instead of requeued.
        """
        expired = [
            lease for lease in self._leases.values() if lease.deadline < now
        ]
        for lease in expired:
            del self._leases[lease.lease_id]
            self.registry.counter("serve.leases.expired").inc()
            for fingerprint in sorted(lease.fingerprints):
                record = self._jobs.get(fingerprint)
                if record is None or record.lease_id != lease.lease_id:
                    continue
                record.lease_id = None
                record.failures.append(
                    {
                        "attempt": record.attempts,
                        "error_type": "LeaseExpired",
                        "error_message": (
                            f"worker {lease.worker_id} missed its lease "
                            f"deadline (lease {lease.lease_id})"
                        ),
                    }
                )
                if record.attempts >= record.max_attempts:
                    record.state = protocol.JOB_QUARANTINED
                    self.registry.counter("serve.jobs.quarantined").inc()
                else:
                    record.state = protocol.JOB_PENDING
                    self._queue.appendleft(fingerprint)
                    self.registry.counter("serve.jobs.requeued").inc()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.registry.gauge("serve.queue.depth").set(len(self._queue))
        self.registry.gauge("serve.leases.active").set(len(self._leases))
        self.registry.gauge("serve.workers.known").set(len(self._workers))
        self.registry.gauge("serve.store.results").set(len(self.store))

    # -- request handlers (all return (body-dict, extra-headers)) ----------------

    def handle_submit(
        self, message: Dict[str, Any], headers: Dict[str, str]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """``POST /v1/jobs`` — idempotent fingerprint-keyed submission."""
        protocol.check_protocol(headers)
        context = protocol.context_from_headers(headers)
        envelope = context.to_envelope() if context is not None else {}
        protocol.require(message, "jobs")
        jobs = message["jobs"]
        if not isinstance(jobs, list):
            raise ServeProtocolError("'jobs' must be a list")
        chaos = message.get("chaos")
        if chaos is not None and not isinstance(chaos, dict):
            raise ServeProtocolError("'chaos' must be an object or null")
        max_attempts = int(message.get("max_attempts", DEFAULT_MAX_ATTEMPTS))
        if max_attempts < 1:
            raise ServeProtocolError("'max_attempts' must be >= 1")
        accepted: List[str] = []
        cached: List[str] = []
        with self._lock:
            self._reap_expired(self._clock())
            if chaos is not None:
                self._chaos = dict(chaos)
            for entry in jobs:
                if not isinstance(entry, dict):
                    raise ServeProtocolError("each job must be an object")
                protocol.require(entry, "fingerprint", "kind", "spec")
                fingerprint = str(entry["fingerprint"])
                if fingerprint in self.store:
                    # Fleet-wide dedup: any client that submitted these
                    # bytes before already paid for the execution.
                    cached.append(fingerprint)
                    self.registry.counter("serve.jobs.deduped").inc()
                    continue
                record = self._jobs.get(fingerprint)
                if record is None:
                    record = _JobRecord(
                        fingerprint=fingerprint,
                        kind=str(entry["kind"]),
                        spec=str(entry["spec"]),
                        max_attempts=max_attempts,
                        envelope=dict(envelope),
                    )
                    self._jobs[fingerprint] = record
                    self._queue.append(fingerprint)
                    self.registry.counter("serve.jobs.submitted").inc()
                # An in-flight duplicate submission shares the existing
                # record — both clients collect the same result.
                accepted.append(fingerprint)
            self._update_gauges()
        return (
            {
                "protocol": protocol.PROTOCOL_VERSION,
                "accepted": accepted,
                "cached": cached,
            },
            {},
        )

    def handle_lease(
        self, message: Dict[str, Any], headers: Dict[str, str]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """``POST /v1/lease`` — hand a worker up to ``capacity`` jobs."""
        protocol.check_protocol(headers)
        protocol.require(message, "worker_id")
        worker_id = str(message["worker_id"])
        capacity = int(message.get("capacity", 1))
        if capacity < 1:
            raise ServeProtocolError("'capacity' must be >= 1")
        now = self._clock()
        with self._lock:
            self._reap_expired(now)
            self._workers.add(worker_id)
            granted: List[Dict[str, Any]] = []
            envelope: Dict[str, str] = {}
            lease: Optional[_Lease] = None
            while self._queue and len(granted) < capacity:
                fingerprint = self._queue.popleft()
                record = self._jobs.get(fingerprint)
                if record is None or record.state != protocol.JOB_PENDING:
                    continue
                if lease is None:
                    self._lease_serial += 1
                    lease = _Lease(
                        lease_id=f"lease-{self._lease_serial}",
                        worker_id=worker_id,
                        deadline=now + self.lease_timeout_s,
                    )
                    self._leases[lease.lease_id] = lease
                    self.registry.counter("serve.leases.granted").inc()
                record.state = protocol.JOB_LEASED
                record.lease_id = lease.lease_id
                record.attempts += 1  # leasing consumes the attempt
                lease.fingerprints.add(fingerprint)
                if not envelope:
                    envelope = dict(record.envelope)
                granted.append(
                    {
                        "fingerprint": fingerprint,
                        "kind": record.kind,
                        "attempt": record.attempts,
                        "spec": record.spec,
                    }
                )
            self._update_gauges()
            body: Dict[str, Any] = {
                "protocol": protocol.PROTOCOL_VERSION,
                "jobs": granted,
                "lease_timeout_s": self.lease_timeout_s,
                "chaos": self._chaos,
            }
            if lease is not None:
                body["lease_id"] = lease.lease_id
            return body, envelope

    def handle_heartbeat(
        self, message: Dict[str, Any], headers: Dict[str, str]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """``POST /v1/heartbeat`` — renew a lease's deadline."""
        protocol.check_protocol(headers)
        protocol.require(message, "lease_id")
        lease_id = str(message["lease_id"])
        now = self._clock()
        with self._lock:
            self._reap_expired(now)
            lease = self._leases.get(lease_id)
            if lease is None:
                # Already reaped: the worker should abandon the batch —
                # its jobs have been re-queued for someone else.
                return {"ok": False, "reason": "unknown-lease"}, {}
            lease.deadline = now + self.lease_timeout_s
            self.registry.counter("serve.leases.renewed").inc()
            return {"ok": True, "lease_timeout_s": self.lease_timeout_s}, {}

    def handle_result(
        self, fingerprint: str, message: Dict[str, Any], headers: Dict[str, str]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """``PUT /v1/result/<fingerprint>`` — idempotent, first-wins."""
        protocol.check_protocol(headers)
        protocol.require(message, "status")
        status = str(message["status"])
        with self._lock:
            self._reap_expired(self._clock())
            record = self._jobs.get(fingerprint)
            if record is None:
                raise ServeProtocolError(
                    f"result for unknown job {fingerprint[:12]}…"
                )
            lease = self._leases.get(record.lease_id or "")
            if record.state in (protocol.JOB_DONE, protocol.JOB_QUARANTINED):
                # Duplicate delivery (chaos, or a re-leased twin finishing
                # after the original): the first result already won.
                self.registry.counter("serve.results.duplicate").inc()
                return {"ok": True, "duplicate": True}, {}
            if status == "ok":
                protocol.require(message, "payload")
                blob = protocol.decode_payload(str(message["payload"]))
                self.store.put(fingerprint, blob)
                record.state = protocol.JOB_DONE
                record.lease_id = None
                self.registry.counter("serve.jobs.completed").inc()
            elif status == "error":
                record.failures.append(
                    {
                        "attempt": int(message.get("attempt", record.attempts)),
                        "error_type": str(message.get("error_type", "Error")),
                        "error_message": str(message.get("error_message", "")),
                    }
                )
                record.lease_id = None
                if record.attempts >= record.max_attempts:
                    record.state = protocol.JOB_QUARANTINED
                    self.registry.counter("serve.jobs.quarantined").inc()
                else:
                    record.state = protocol.JOB_PENDING
                    self._queue.appendleft(fingerprint)
                    self.registry.counter("serve.jobs.requeued").inc()
                    self.registry.counter("serve.jobs.retries").inc()
            else:
                raise ServeProtocolError(
                    f"result status must be 'ok' or 'error', got {status!r}"
                )
            if lease is not None:
                lease.fingerprints.discard(fingerprint)
                if not lease.fingerprints:
                    self._leases.pop(lease.lease_id, None)
            self._update_gauges()
            return {"ok": True, "duplicate": False}, {}

    def handle_collect(
        self, message: Dict[str, Any], headers: Dict[str, str]
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """``POST /v1/collect`` — poll results for a set of fingerprints."""
        protocol.check_protocol(headers)
        protocol.require(message, "fingerprints")
        fingerprints = message["fingerprints"]
        if not isinstance(fingerprints, list):
            raise ServeProtocolError("'fingerprints' must be a list")
        done: Dict[str, Dict[str, Any]] = {}
        pending: List[str] = []
        with self._lock:
            self._reap_expired(self._clock())
            for raw in fingerprints:
                fingerprint = str(raw)
                record = self._jobs.get(fingerprint)
                if record is not None and record.state == protocol.JOB_QUARANTINED:
                    done[fingerprint] = {
                        "status": "quarantined",
                        "attempts": record.attempts,
                        "failures": list(record.failures),
                    }
                    continue
                blob = self.store.get(fingerprint)
                if blob is not None:
                    done[fingerprint] = {
                        "status": "ok",
                        "payload": protocol.encode_payload(blob),
                        "attempts": record.attempts if record else 1,
                        "failures": list(record.failures) if record else [],
                    }
                else:
                    pending.append(fingerprint)
        return {"done": done, "pending": pending}, {}

    def status_snapshot(self) -> Dict[str, Any]:
        """JSON-safe service snapshot for ``GET /v1/status``."""
        with self._lock:
            self._reap_expired(self._clock())
            by_state: Dict[str, int] = {}
            for record in self._jobs.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "queue_depth": len(self._queue),
                "leases": len(self._leases),
                "workers": sorted(self._workers),
                "jobs": by_state,
                "store": {
                    "results": len(self.store),
                    **self.store.stats.as_dict(),
                },
            }


class _CoordinatorServer(ThreadingHTTPServer):
    daemon_threads = True
    coordinator: Coordinator


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes the tiny protocol surface; errors become JSON bodies."""

    server_version = "repro-serve/1"

    # -- plumbing ----------------------------------------------------------------

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length) if length else b""

    def _reply(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = protocol.CONTENT_TYPE,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up (or chaos dropped the response)

    def _reply_json(
        self,
        status: int,
        message: Dict[str, Any],
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        self._reply(status, protocol.dumps_message(message), extra=extra)

    def _dispatch(
        self,
        handler: Callable[..., Tuple[Dict[str, Any], Dict[str, str]]],
        *args: Any,
    ) -> None:
        try:
            body, extra = handler(*args)
        except ServeProtocolError as error:
            self._reply_json(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - server must not die
            self._reply_json(
                500, {"error": f"{type(error).__name__}: {error}"}
            )
        else:
            self._reply_json(200, body, extra)

    def _headers_dict(self) -> Dict[str, str]:
        return {str(k): str(v) for k, v in self.headers.items()}

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        coordinator = self.server.coordinator
        if path == "/metrics":
            body = render_openmetrics(coordinator.registry).encode("utf-8")
            self._reply(body=body, status=200, content_type=OPENMETRICS_CONTENT_TYPE)
        elif path == "/healthz":
            self._reply(200, b"ok\n", content_type="text/plain; charset=utf-8")
        elif path == "/v1/status":
            self._reply_json(200, coordinator.status_snapshot())
        else:
            self._reply_json(404, {"error": f"no such path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        coordinator = self.server.coordinator
        headers = self._headers_dict()
        try:
            message = protocol.loads_message(self._body())
        except ServeProtocolError as error:
            self._reply_json(400, {"error": str(error)})
            return
        if path == "/v1/jobs":
            self._dispatch(coordinator.handle_submit, message, headers)
        elif path == "/v1/lease":
            self._dispatch(coordinator.handle_lease, message, headers)
        elif path == "/v1/heartbeat":
            self._dispatch(coordinator.handle_heartbeat, message, headers)
        elif path == "/v1/collect":
            self._dispatch(coordinator.handle_collect, message, headers)
        else:
            self._reply_json(404, {"error": f"no such path {path!r}"})

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        coordinator = self.server.coordinator
        if not path.startswith("/v1/result/"):
            self._reply_json(404, {"error": f"no such path {path!r}"})
            return
        fingerprint = path[len("/v1/result/"):]
        headers = self._headers_dict()
        try:
            message = protocol.loads_message(self._body())
        except ServeProtocolError as error:
            self._reply_json(400, {"error": str(error)})
            return
        self._dispatch(coordinator.handle_result, fingerprint, message, headers)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (the protocol is chatty)."""


__all__ = [
    "Coordinator",
    "DEFAULT_LEASE_TIMEOUT_S",
    "DEFAULT_MAX_ATTEMPTS",
]
