"""Wire format of the multi-host campaign service.

One deliberately small HTTP/JSON protocol connects the three roles of
:mod:`repro.serve` — the submitting client (``repro campaign --remote``),
the coordinator (``repro serve``) and the worker agents (``repro work``):

===========================  ====================================================
``POST /v1/jobs``            client submits a batch of fingerprinted job specs
``POST /v1/lease``           worker asks for a lease over pending jobs
``POST /v1/heartbeat``       worker renews a lease's deadline
``PUT  /v1/result/<fp>``     worker publishes one job's result (idempotent)
``POST /v1/collect``         client polls for completed results
``GET  /v1/status``          JSON service snapshot (leases, queue, store)
``GET  /metrics``            OpenMetrics exposition (``repro top --url``)
``GET  /healthz``            liveness probe
===========================  ====================================================

Every request and response body is a JSON object; job specs and result
payloads travel inside it as base64-wrapped canonical pickles
(:func:`repro.registry.store.encode_object`), so the bytes that cross
the wire are exactly the bytes the content-addressed stores hash.

Trace context rides on *headers*, not bodies: the PR-9 span envelope
(``repro-trace-id`` / ``repro-parent-id`` / ``repro-span-schema``) was
shaped like HTTP headers from the start, and here those keys finally go
on a real socket.  The coordinator parses them case-insensitively,
tolerates unknown headers, and rejects a newer envelope schema with a
400 rather than misreading it — mirroring
:meth:`repro.observe.spans.SpanContext.from_envelope`.

Idempotency is the protocol's core invariant: submissions are keyed on
job fingerprints, results are keyed on job fingerprints, and re-sending
any request cannot change service state — which is what lets the chaos
transport (dropped responses, torn bodies, stalls, duplicated
deliveries) retry blindly without perturbing a single byte of results.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServeProtocolError
from repro.observe.spans import (
    ENVELOPE_PARENT_KEY,
    ENVELOPE_SCHEMA_KEY,
    ENVELOPE_TRACE_KEY,
    SPAN_SCHEMA_VERSION,
    SpanContext,
)

#: Bumped whenever request/response shapes change incompatibly.
PROTOCOL_VERSION = 1

#: Extra service headers riding alongside the span envelope.
PROTOCOL_HEADER = "repro-serve-protocol"
WORKER_HEADER = "repro-worker-id"

#: Content type of every protocol body.
CONTENT_TYPE = "application/json; charset=utf-8"

#: Job states the coordinator's lease table moves jobs through.
JOB_PENDING = "pending"
JOB_LEASED = "leased"
JOB_DONE = "done"
JOB_QUARANTINED = "quarantined"

#: Result origins reported to the client (and recorded by the session).
ORIGIN_REMOTE = "remote"
ORIGIN_REMOTE_CACHE = "remote-cache"


def encode_payload(blob: bytes) -> str:
    """Wrap pickle bytes for a JSON body (base64, ASCII-safe)."""
    return base64.b64encode(blob).decode("ascii")


def decode_payload(text: str) -> bytes:
    """Unwrap a base64 payload; raises :class:`ServeProtocolError`."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise ServeProtocolError(
            f"malformed base64 payload: {error}"
        ) from error


def dumps_message(message: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes for one protocol message."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def loads_message(blob: bytes) -> Dict[str, Any]:
    """Parse one protocol body; raises :class:`ServeProtocolError`.

    A chaos-torn (truncated) body fails here, which the client treats
    exactly like a dropped response: retry the idempotent request.
    """
    try:
        message = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ServeProtocolError(
            f"malformed protocol body ({len(blob)} bytes): {error}"
        ) from error
    if not isinstance(message, dict):
        raise ServeProtocolError(
            f"protocol body must be a JSON object, got {type(message).__name__}"
        )
    return message


def require(message: Mapping[str, Any], *fields: str) -> None:
    """Assert required fields; raises :class:`ServeProtocolError`."""
    missing = [field for field in fields if field not in message]
    if missing:
        raise ServeProtocolError(
            f"protocol message is missing field(s) {missing!r}"
        )


def check_protocol(headers: Mapping[str, str]) -> None:
    """Reject a newer protocol version rather than misreading it."""
    lowered = {str(k).lower(): str(v) for k, v in headers.items()}
    raw = lowered.get(PROTOCOL_HEADER, str(PROTOCOL_VERSION))
    try:
        version = int(raw)
    except ValueError as error:
        raise ServeProtocolError(
            f"{PROTOCOL_HEADER} header must be an integer, got {raw!r}"
        ) from error
    if version > PROTOCOL_VERSION:
        raise ServeProtocolError(
            f"protocol version {version} is newer than supported "
            f"{PROTOCOL_VERSION}"
        )


def span_headers(context: Optional[SpanContext]) -> Dict[str, str]:
    """The span-envelope headers for one request (empty without context)."""
    if context is None:
        return {}
    return context.to_envelope()


def context_from_headers(
    headers: Mapping[str, str],
) -> Optional[SpanContext]:
    """Parse the span envelope off real HTTP headers.

    Header lookup is case-insensitive and unknown headers are ignored
    (HTTP semantics).  Returns ``None`` when no envelope rides on the
    request; raises :class:`ServeProtocolError` when an envelope is
    present but its schema is newer than this process understands.
    """
    lowered = {str(k).lower(): str(v) for k, v in headers.items()}
    if (
        ENVELOPE_TRACE_KEY not in lowered
        and ENVELOPE_PARENT_KEY not in lowered
        and ENVELOPE_SCHEMA_KEY not in lowered
    ):
        return None
    try:
        return SpanContext.from_envelope(lowered)
    except Exception as error:
        # ConfigurationError for a newer schema or a half-missing
        # envelope; either way the request is malformed, not the server.
        raise ServeProtocolError(f"bad span envelope: {error}") from error


__all__ = [
    "CONTENT_TYPE",
    "ENVELOPE_PARENT_KEY",
    "ENVELOPE_SCHEMA_KEY",
    "ENVELOPE_TRACE_KEY",
    "JOB_DONE",
    "JOB_LEASED",
    "JOB_PENDING",
    "JOB_QUARANTINED",
    "ORIGIN_REMOTE",
    "ORIGIN_REMOTE_CACHE",
    "PROTOCOL_HEADER",
    "PROTOCOL_VERSION",
    "SPAN_SCHEMA_VERSION",
    "WORKER_HEADER",
    "check_protocol",
    "context_from_headers",
    "decode_payload",
    "dumps_message",
    "encode_payload",
    "loads_message",
    "require",
    "span_headers",
]
