"""Fault-tolerant multi-host campaign service.

Three processes, one contract:

* **coordinator** (``repro serve``) — leases fingerprinted jobs to
  workers under heartbeat deadlines and dedups results fleet-wide in a
  content-addressed store (:mod:`repro.serve.coordinator`);
* **worker** (``repro work``) — leases, executes with the engine's own
  supervised entry point, publishes idempotent results
  (:mod:`repro.serve.worker`);
* **client** (``repro campaign --remote``) — an ordinary
  :class:`~repro.engine.executors.Executor` that shards a session's
  batches through the fleet and degrades gracefully to local execution
  (:mod:`repro.serve.client`).

The invariant every module here defends is the one that anchors the
whole repo: whatever the network does — dropped responses, torn bodies,
stalls, duplicated deliveries, workers SIGKILLed mid-lease — a remote
campaign converges to the byte-identical results and registry run ids
of the serial run, because jobs replay named seed streams and every
request is idempotent by fingerprint.
"""

from repro.serve.client import RemoteExecutor, Transport
from repro.serve.coordinator import Coordinator
from repro.serve.protocol import (
    ORIGIN_REMOTE,
    ORIGIN_REMOTE_CACHE,
    PROTOCOL_VERSION,
)
from repro.serve.store import ResultStore
from repro.serve.worker import WorkerAgent

__all__ = [
    "Coordinator",
    "ORIGIN_REMOTE",
    "ORIGIN_REMOTE_CACHE",
    "PROTOCOL_VERSION",
    "RemoteExecutor",
    "ResultStore",
    "Transport",
    "WorkerAgent",
]
