"""Client side of the campaign service: transport and remote executor.

:class:`Transport` is the only piece of this package that touches a
socket on the client's behalf.  It retries every request under a
*deterministic* capped exponential backoff — the schedule depends only
on the policy's numbers, never on randomness — and raises
:class:`~repro.errors.CoordinatorUnreachableError` once the budget is
spent.  Because every protocol request is idempotent (submission and
results are keyed on job fingerprints), the transport can retry blindly;
that is also where the chaos harness plugs in, replaying the classic
network failure modes on a seeded schedule:

* **drop** — the request reaches the coordinator but the response is
  discarded, so the retry exercises duplicate-submission paths;
* **tear** — the response body is truncated mid-byte, so the retry
  exercises the malformed-body path;
* **stall** — the socket hangs for ``net_stall_s`` before failing;
* **duplicate** — the request is delivered twice back to back.

:class:`RemoteExecutor` implements the ordinary
:class:`~repro.engine.executors.Executor` contract on top of that
transport, so ``EngineSession`` shards a campaign through the fleet
without changing a line: submit the batch (span envelope on the HTTP
headers), poll ``/v1/collect``, and hand back results in input order.
When the coordinator stays unreachable beyond the retry budget — or
stops making progress past ``max_wait_s`` — the executor degrades
gracefully to inline execution with the same
:class:`~repro.engine.resilience.RetryPolicy`, exactly like the process
pool does when it cannot keep workers alive.  Degradation cannot change
payload bytes; every job replays its named seed stream wherever it runs.
"""

from __future__ import annotations

import pickle
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.executors import Executor, ProgressCallback, SerialExecutor
from repro.engine.jobs import JobResult, JobSpec
from repro.engine.resilience import ChaosPolicy, Quarantined, RetryPolicy
from repro.errors import CoordinatorUnreachableError, ServeProtocolError
from repro.registry.store import encode_object
from repro.serve import protocol

#: Transport retry schedule defaults (deterministic, capped exponential).
DEFAULT_MAX_TRIES = 5
DEFAULT_BACKOFF_S = 0.05
DEFAULT_BACKOFF_FACTOR = 2.0
DEFAULT_BACKOFF_CAP_S = 2.0
DEFAULT_TIMEOUT_S = 10.0


class Transport:
    """Retrying HTTP/JSON channel to one coordinator.

    ``sleep`` is injectable so tests can pin the backoff schedule
    without waiting through it.
    """

    def __init__(
        self,
        base_url: str,
        *,
        chaos: Optional[ChaosPolicy] = None,
        max_tries: int = DEFAULT_MAX_TRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        backoff_factor: float = DEFAULT_BACKOFF_FACTOR,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.chaos = chaos
        self.max_tries = max(1, int(max_tries))
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap_s = float(backoff_cap_s)
        self.timeout_s = float(timeout_s)
        self._sleep = sleep

    def backoff_for(self, attempt: int) -> float:
        """Deterministic capped exponential delay before retry ``attempt + 1``."""
        return min(
            self.backoff_cap_s,
            self.backoff_s * self.backoff_factor ** (attempt - 1),
        )

    def _raw(
        self,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[Dict[str, str], bytes]:
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        request.add_header("Content-Type", protocol.CONTENT_TYPE)
        request.add_header(
            protocol.PROTOCOL_HEADER, str(protocol.PROTOCOL_VERSION)
        )
        for name, value in headers.items():
            request.add_header(name, value)
        with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
            return dict(reply.headers.items()), reply.read()

    def request(
        self,
        method: str,
        path: str,
        message: Optional[Dict[str, Any]] = None,
        *,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """One idempotent protocol request, retried under the budget.

        Returns ``(parsed body, response headers)``.  Raises
        :class:`ServeProtocolError` on a coordinator 400 (a real
        protocol disagreement, which a retry cannot fix) and
        :class:`CoordinatorUnreachableError` when the retry budget is
        exhausted by connection failures, 5xx replies, or chaos.
        """
        data = protocol.dumps_message(message or {})
        extra = dict(headers or {})
        last_error: BaseException = OSError("no attempt made")
        for attempt in range(1, self.max_tries + 1):
            action = None
            if self.chaos is not None:
                action = self.chaos.network_action_for(
                    f"{method} {path}", attempt
                )
            try:
                if action == "stall":
                    self._sleep(self.chaos.net_stall_s)
                    raise OSError("chaos: stalled socket")
                reply_headers, body = self._raw(method, path, data, extra)
                if action == "duplicate":
                    # Deliver the (idempotent) request a second time and
                    # use the second reply — the duplicate must be free.
                    reply_headers, body = self._raw(method, path, data, extra)
                if action == "drop":
                    # The coordinator processed the request; the client
                    # never hears back.  The retry must be harmless.
                    raise OSError("chaos: response dropped")
                if action == "tear":
                    body = body[: len(body) // 2]
                return protocol.loads_message(body), reply_headers
            except urllib.error.HTTPError as error:
                detail = ""
                try:
                    detail = error.read().decode("utf-8", "replace")
                except OSError:
                    pass
                if error.code == 400:
                    raise ServeProtocolError(
                        f"coordinator rejected {method} {path}: {detail.strip()}"
                    ) from error
                last_error = error
            except (OSError, ServeProtocolError) as error:
                last_error = error
            if attempt < self.max_tries:
                self._sleep(self.backoff_for(attempt))
        raise CoordinatorUnreachableError(
            self.base_url, self.max_tries, last_error
        )


class RemoteExecutor(Executor):
    """Shards batches through a coordinator; degrades to inline on loss.

    Satisfies the full :class:`Executor` contract — results in input
    order, ``stats``/``failed_attempts`` bookkeeping, ``on_inflight``
    occupancy, quarantine semantics — so the engine session cannot tell
    the fleet from a local pool except by reading ``result.origin``.
    """

    name = "remote"

    def __init__(
        self,
        url: str,
        *,
        policy: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
        poll_interval_s: float = 0.05,
        max_wait_s: Optional[float] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        super().__init__()
        self.url = url.rstrip("/")
        self.policy = policy or RetryPolicy()
        self.chaos = chaos
        self.poll_interval_s = float(poll_interval_s)
        self.max_wait_s = max_wait_s
        self.transport = transport or Transport(self.url, chaos=chaos)

    # -- landing results ---------------------------------------------------------

    def _book_failures(self, fingerprint: str, job: JobSpec, entry: Dict) -> None:
        """Fold the coordinator's failure history into local bookkeeping.

        Each entry becomes an ``attempt`` span in the fleet timeline via
        :attr:`failed_attempts`; lease expiries count as requeues (the
        fleet analogue of a pool respawn), everything else as retries.
        """
        for failure in entry.get("failures", []):
            error_type = str(failure.get("error_type", "Error"))
            self.failed_attempts.append(
                {
                    "fingerprint": fingerprint,
                    "kind": job.kind,
                    "attempt": int(failure.get("attempt", 0)),
                    "error_type": error_type,
                }
            )
            if error_type == "LeaseExpired":
                self.stats.requeues += 1
            else:
                self.stats.retries += 1

    def _land(
        self,
        fingerprint: str,
        entry: Dict[str, Any],
        job: JobSpec,
        cached: bool,
        submitted_s: float,
    ) -> JobResult:
        from repro.observe.spans import note_queue_wait

        self._book_failures(fingerprint, job, entry)
        attempts = int(entry.get("attempts", 1))
        if entry.get("status") == "quarantined":
            failures = entry.get("failures", [])
            last = failures[-1] if failures else {}
            self.stats.quarantined += 1
            payload = Quarantined(
                fingerprint=fingerprint,
                kind=job.kind,
                attempts=attempts,
                error_type=str(last.get("error_type", "Error")),
                error_message=str(last.get("error_message", "")),
                flight_dump=None,
            )
            result = JobResult(
                fingerprint=fingerprint,
                payload=payload,
                counters={},
                attempts=attempts,
            )
            result.origin = protocol.ORIGIN_REMOTE
            return result
        blob = protocol.decode_payload(str(entry["payload"]))
        result: JobResult = pickle.loads(blob)
        result.attempts = attempts
        if cached:
            # Replayed from the fleet store: nothing queued or executed
            # for this submission, so no queue-wait annotation.
            result.origin = protocol.ORIGIN_REMOTE_CACHE
        else:
            result.origin = protocol.ORIGIN_REMOTE
            # The whole remote hop (queue + execution + transfer) since
            # this client submitted, visible as the job span's
            # queue_wait_s in ``repro top`` and the fleet timeline.
            note_queue_wait(result.spans, result.span_wall, submitted_s)
        return result

    # -- degradation -------------------------------------------------------------

    def _degrade(
        self,
        jobs: Sequence[JobSpec],
        completed: List[JobResult],
        progress: Optional[ProgressCallback],
        span_context,
        land: Callable[[JobSpec, JobResult], None],
    ) -> None:
        """Finish ``jobs`` inline under the same retry policy."""
        inline = SerialExecutor(policy=self.policy)
        for job in jobs:
            self.stats.degraded += 1
            result = inline._run_one(job, completed, span_context)
            land(job, result)
        self.stats.retries += inline.stats.retries
        self.stats.quarantined += inline.stats.quarantined
        self.failed_attempts.extend(inline.drain_failed_attempts())

    # -- the executor contract ---------------------------------------------------

    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
        span_context=None,
    ) -> List[JobResult]:
        jobs = list(jobs)
        if not jobs:
            return []
        fingerprints = [job.fingerprint() for job in jobs]
        by_fingerprint: Dict[str, JobSpec] = {}
        for job, fingerprint in zip(jobs, fingerprints):
            by_fingerprint.setdefault(fingerprint, job)

        results: Dict[str, JobResult] = {}
        completed_count = 0

        def land(fingerprint: str, result: JobResult) -> None:
            nonlocal completed_count
            results[fingerprint] = result
            completed_count += 1
            if progress is not None:
                progress(completed_count, result)

        headers = protocol.span_headers(span_context)
        submit_message = {
            "jobs": [
                {
                    "fingerprint": fingerprint,
                    "kind": by_fingerprint[fingerprint].kind,
                    "spec": protocol.encode_payload(
                        encode_object(by_fingerprint[fingerprint])
                    ),
                }
                for fingerprint in sorted(by_fingerprint)
            ],
            "chaos": self.chaos.as_dict() if self.chaos is not None else None,
            "max_attempts": self.policy.max_attempts,
        }
        try:
            reply, _ = self.transport.request(
                "POST", "/v1/jobs", submit_message, headers=headers
            )
        except CoordinatorUnreachableError:
            # Never reached the fleet: the whole batch runs locally.
            self._degrade(
                [by_fingerprint[f] for f in sorted(by_fingerprint)],
                list(results.values()),
                progress,
                span_context,
                lambda job, result: land(job.fingerprint(), result),
            )
            return [results[fingerprint] for fingerprint in fingerprints]

        cached = set(reply.get("cached", []))
        submitted_s = time.monotonic()
        pending = set(by_fingerprint)
        deadline = (
            submitted_s + self.max_wait_s if self.max_wait_s is not None else None
        )
        unreachable = False
        while pending:
            if self.on_inflight is not None:
                self.on_inflight(len(pending))
            try:
                reply, _ = self.transport.request(
                    "POST",
                    "/v1/collect",
                    {"fingerprints": sorted(pending)},
                    headers=headers,
                )
            except CoordinatorUnreachableError:
                unreachable = True
                break
            for fingerprint, entry in sorted(reply.get("done", {}).items()):
                if fingerprint not in pending:
                    continue
                pending.discard(fingerprint)
                land(
                    fingerprint,
                    self._land(
                        fingerprint,
                        entry,
                        by_fingerprint[fingerprint],
                        fingerprint in cached,
                        submitted_s,
                    ),
                )
            if not pending:
                break
            if deadline is not None and time.monotonic() > deadline:
                # Reachable but not progressing (no workers attached, or
                # a stuck fleet): from here the local machine is the
                # fleet of last resort.
                unreachable = True
                break
            time.sleep(self.poll_interval_s)

        if self.on_inflight is not None:
            self.on_inflight(0)
        if unreachable and pending:
            self._degrade(
                [by_fingerprint[f] for f in sorted(pending)],
                list(results.values()),
                progress,
                span_context,
                lambda job, result: land(job.fingerprint(), result),
            )
        return [results[fingerprint] for fingerprint in fingerprints]


__all__ = [
    "DEFAULT_BACKOFF_CAP_S",
    "DEFAULT_BACKOFF_FACTOR",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_MAX_TRIES",
    "DEFAULT_TIMEOUT_S",
    "RemoteExecutor",
    "Transport",
]
