"""Worker agent (``repro work --coordinator URL``).

A worker is a deliberately dumb loop: lease a batch, heartbeat it,
execute each job with the exact machinery a local process-pool worker
uses (:func:`repro.engine.resilience.execute_supervised`), publish each
result with an idempotent PUT, repeat.  All policy lives on the
coordinator — attempt budgets, requeue-vs-quarantine decisions, dedup —
so a worker can be SIGKILLed at any instant without losing anything but
the lease deadline.

Two details carry the robustness story:

* the **heartbeat thread** renews the lease at a third of its timeout;
  if the coordinator answers ``ok: false`` the lease has already been
  reaped (this worker was presumed dead — a partition, a long GC, a
  stall) and the worker *abandons the rest of the batch*: its jobs are
  someone else's now, and publishing late results is harmless anyway
  because result PUTs are first-wins;
* the **chaos policy travels with the lease**, so an injected ``kill``
  takes the whole agent down mid-lease with ``os._exit`` — precisely
  the failure the lease deadline exists to absorb.  The respawned (or
  surviving) worker re-leases the job on the next attempt number and
  replays the same named seed stream, byte for byte.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.engine.resilience import ChaosPolicy, SupervisedTask, execute_supervised
from repro.errors import CoordinatorUnreachableError, ServeProtocolError
from repro.registry.store import encode_object
from repro.serve import protocol
from repro.serve.client import Transport

#: How often an idle worker re-polls for work.
DEFAULT_POLL_INTERVAL_S = 0.2

#: Lease batch size a worker asks for by default.
DEFAULT_CAPACITY = 2


def default_worker_id() -> str:
    """hostname-pid, unique enough for a fleet and readable in spans."""
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkerAgent:
    """One lease-execute-publish loop against one coordinator."""

    def __init__(
        self,
        url: str,
        *,
        worker_id: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        max_idle_s: Optional[float] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self.worker_id = worker_id or default_worker_id()
        self.capacity = max(1, int(capacity))
        self.poll_interval_s = float(poll_interval_s)
        self.max_idle_s = max_idle_s
        # The worker's control plane runs without chaos: network faults
        # are a client-transport concern, worker faults arrive via the
        # leased ChaosPolicy below.
        self.transport = transport or Transport(url)
        self.executed = 0

    # -- one lease ---------------------------------------------------------------

    def _publish(self, fingerprint: str, message: Dict[str, Any]) -> None:
        self.transport.request(
            "PUT", f"/v1/result/{fingerprint}", message
        )

    def serve_lease(self, reply: Dict[str, Any], headers: Dict[str, str]) -> int:
        """Execute one granted lease; returns how many results landed."""
        jobs = reply.get("jobs", [])
        if not jobs:
            return 0
        lease_id = str(reply["lease_id"])
        lease_timeout_s = float(
            reply.get("lease_timeout_s", 15.0)
        )
        chaos_dict = reply.get("chaos")
        chaos = ChaosPolicy(**chaos_dict) if chaos_dict else None
        span_context = protocol.context_from_headers(headers)

        abandoned = threading.Event()
        stop = threading.Event()

        def heartbeat() -> None:
            interval = max(0.05, lease_timeout_s / 3.0)
            while not stop.wait(interval):
                try:
                    pulse, _ = self.transport.request(
                        "POST", "/v1/heartbeat", {"lease_id": lease_id}
                    )
                except (CoordinatorUnreachableError, ServeProtocolError):
                    abandoned.set()
                    return
                if not pulse.get("ok", False):
                    # Reaped: the jobs have been re-queued for another
                    # worker — stop touching this batch.
                    abandoned.set()
                    return

        pulse_thread = threading.Thread(
            target=heartbeat, name="repro-work-heartbeat", daemon=True
        )
        pulse_thread.start()
        landed = 0
        try:
            for entry in jobs:
                if abandoned.is_set():
                    break
                fingerprint = str(entry["fingerprint"])
                attempt = int(entry.get("attempt", 1))
                try:
                    job = pickle.loads(
                        protocol.decode_payload(str(entry["spec"]))
                    )
                    # Same entry point as a process-pool worker: chaos
                    # (possibly os._exit mid-lease), then the job on its
                    # named seed stream.
                    result = execute_supervised(
                        SupervisedTask(
                            job=job,
                            attempt=attempt,
                            chaos=chaos,
                            span_context=span_context,
                        )
                    )
                except Exception as error:  # noqa: BLE001 - reported upstream
                    self._publish(
                        fingerprint,
                        {
                            "lease_id": lease_id,
                            "attempt": attempt,
                            "status": "error",
                            "error_type": type(error).__name__,
                            "error_message": str(error),
                        },
                    )
                else:
                    self._publish(
                        fingerprint,
                        {
                            "lease_id": lease_id,
                            "attempt": attempt,
                            "status": "ok",
                            "payload": protocol.encode_payload(
                                encode_object(result)
                            ),
                        },
                    )
                    landed += 1
        finally:
            stop.set()
            pulse_thread.join(timeout=5.0)
        self.executed += landed
        return landed

    # -- the loop ----------------------------------------------------------------

    def run(self, *, max_leases: Optional[int] = None) -> int:
        """Lease and execute until idle past ``max_idle_s`` (or forever).

        Returns the number of results this agent landed.  ``max_leases``
        bounds the loop for tests.
        """
        idle_since = time.monotonic()
        leases_served = 0
        while True:
            reply, headers = self.transport.request(
                "POST",
                "/v1/lease",
                {"worker_id": self.worker_id, "capacity": self.capacity},
            )
            if reply.get("jobs"):
                self.serve_lease(reply, headers)
                leases_served += 1
                idle_since = time.monotonic()
                if max_leases is not None and leases_served >= max_leases:
                    return self.executed
                continue
            if (
                self.max_idle_s is not None
                and time.monotonic() - idle_since > self.max_idle_s
            ):
                return self.executed
            time.sleep(self.poll_interval_s)


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_POLL_INTERVAL_S",
    "WorkerAgent",
    "default_worker_id",
]
