"""Fleet-wide content-addressed result store for the coordinator.

The coordinator keeps one :class:`ResultStore` for its whole lifetime.
Result payload bytes live in the same sha256-addressed blob layout the
run registry uses (:class:`repro.registry.store.ObjectStore`), so a
registry directory and a coordinator store can share ``objects/``
without either caring.  On top of the blobs sits a tiny fingerprint
index — job fingerprint → payload sha — persisted as an
append-only JSONL sidecar so a restarted coordinator still serves
yesterday's results from cache.

Dedup is the point: when any client re-submits a job whose fingerprint
is already indexed, the coordinator answers from the store instead of
leasing the job out, and the client records the result with origin
``remote-cache``.  The index only ever *adds* entries (results are
deterministic per fingerprint by construction), so concurrent readers
need no locking beyond the store's own put/get atomicity; the mutating
paths take a small lock to keep the sidecar append and the in-memory
map in step.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.registry.store import ObjectStore

#: Sidecar file mapping job fingerprints to payload blob addresses.
INDEX_NAME = "results.jsonl"


@dataclass
class ResultStoreStats:
    """Effectiveness counters surfaced on ``/metrics`` and ``/v1/status``."""

    stored: int = 0
    hits: int = 0
    misses: int = 0

    def as_dict(self) -> dict:
        return {"stored": self.stored, "hits": self.hits, "misses": self.misses}


@dataclass
class ResultStore:
    """fingerprint → result-payload bytes, content-addressed and durable."""

    root: Union[str, Path]
    stats: ResultStoreStats = field(default_factory=ResultStoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._objects = ObjectStore(self.root)
        self._index: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._load_index()

    @property
    def index_path(self) -> Path:
        return Path(self.root) / INDEX_NAME

    def _load_index(self) -> None:
        try:
            lines = self.index_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # A torn tail line from a crashed append is the only way a
                # bad line gets here; everything before it is intact.
                continue
            fingerprint = entry.get("fingerprint")
            sha = entry.get("sha256")
            if isinstance(fingerprint, str) and isinstance(sha, str):
                self._index[fingerprint] = sha

    # -- writing -----------------------------------------------------------------

    def put(self, fingerprint: str, blob: bytes) -> str:
        """Store one result's payload bytes under its job fingerprint.

        Idempotent and first-wins: a fingerprint that is already indexed
        keeps its original blob (deterministic jobs make any second copy
        byte-identical anyway; this just makes duplicate deliveries
        free).  Returns the payload's sha256 address.
        """
        with self._lock:
            existing = self._index.get(fingerprint)
            if existing is not None:
                return existing
            sha = self._objects.put_bytes(blob)
            with self.index_path.open("a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {"fingerprint": fingerprint, "sha256": sha},
                        sort_keys=True,
                    )
                    + "\n"
                )
            self._index[fingerprint] = sha
            self.stats.stored += 1
            return sha

    # -- reading -----------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[bytes]:
        """The stored payload bytes for ``fingerprint``, or ``None``.

        Counts a hit or miss — the coordinator's dedup effectiveness is
        exactly the hit rate of this method at submit time.
        """
        sha = self._index.get(fingerprint)
        if sha is None:
            self.stats.misses += 1
            return None
        blob = self._objects.get_bytes(sha)
        self.stats.hits += 1
        return blob

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._index

    def __len__(self) -> int:
        return len(self._index)


__all__ = ["INDEX_NAME", "ResultStore", "ResultStoreStats"]
