# Plug Your Volt reproduction — common tasks.

.PHONY: install test bench examples artifacts clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script || exit 1; done

artifacts: bench
	@echo "reproduced tables/figures in benchmarks/results/:"
	@ls benchmarks/results/

clean:
	rm -rf .pytest_cache benchmarks/results build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
