# Plug Your Volt reproduction — common tasks.

.PHONY: install test bench vector-bench campaign explore chaos fuzz examples artifacts trace-demo profile-demo clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

# Scalar-oracle vs vectorized sweep: byte-identity plus the recorded
# speedup (gated against benchmarks/trajectories/BENCH_characterization_vector.json
# in CI via `repro trajectory check`).
vector-bench:
	pytest benchmarks/test_bench_characterization_vector.py -q

# The Sec. 4.3 prevention matrix through the campaign engine, sharded
# across a process pool (EXECUTOR/WORKERS overridable).
campaign:
	python -m repro campaign --executor $${EXECUTOR:-process} --workers $${WORKERS:-4}

# Exhaustive fault-space exploration of the RSA-CRT signer: undefended
# map, protected map, and the coverage diff.  Exits nonzero unless the
# countermeasure drives the exploitable set to exactly zero.
explore:
	python -m repro explore run --cpu "$${CPU:-Sky Lake}" --json explore-open.json
	python -m repro explore run --cpu "$${CPU:-Sky Lake}" --protect --json explore-protected.json
	python -m repro explore report explore-open.json explore-protected.json

# Campaign under seeded chaos (worker kills, injected errors, stalls,
# torn cache writes) followed by a byte-identity convergence check
# (SEED/BUDGET overridable).  Exits nonzero if chaos changed a result.
chaos:
	python -m repro chaos --seed $${SEED:-0} --budget $${BUDGET:-50}

# Adversarial-schedule fuzzing under the runtime invariant checker
# (SEED/BUDGET overridable).  Exits nonzero and writes fuzz-repro.json
# when an invariant is violated.
fuzz:
	python -m repro fuzz --seed $${SEED:-0} --budget $${BUDGET:-200}

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script || exit 1; done

artifacts: bench
	@echo "reproduced tables/figures in benchmarks/results/:"
	@ls benchmarks/results/

# Run the full reproduction with telemetry on and export a Chrome
# trace_event file (open it in https://ui.perfetto.dev).
trace-demo:
	mkdir -p benchmarks/results
	REPRO_TRACE=benchmarks/results/full_reproduction.trace.json \
		python examples/full_reproduction.py
	@echo "trace written to benchmarks/results/full_reproduction.trace.json"

# Profile an imul campaign's dispatch loop and export a speedscope
# document (open it at https://speedscope.app) plus collapsed stacks.
profile-demo:
	mkdir -p benchmarks/results
	python -m repro profile --cpu "Comet Lake" \
		--out benchmarks/results/imul_campaign.speedscope.json \
		--collapsed benchmarks/results/imul_campaign.collapsed.txt
	@echo "profile written to benchmarks/results/imul_campaign.speedscope.json"

clean:
	rm -rf .pytest_cache benchmarks/results build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
