# Plug Your Volt reproduction — common tasks.

.PHONY: install test bench campaign fuzz examples artifacts trace-demo clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

# The Sec. 4.3 prevention matrix through the campaign engine, sharded
# across a process pool (EXECUTOR/WORKERS overridable).
campaign:
	python -m repro campaign --executor $${EXECUTOR:-process} --workers $${WORKERS:-4}

# Adversarial-schedule fuzzing under the runtime invariant checker
# (SEED/BUDGET overridable).  Exits nonzero and writes fuzz-repro.json
# when an invariant is violated.
fuzz:
	python -m repro fuzz --seed $${SEED:-0} --budget $${BUDGET:-200}

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script || exit 1; done

artifacts: bench
	@echo "reproduced tables/figures in benchmarks/results/:"
	@ls benchmarks/results/

# Run the full reproduction with telemetry on and export a Chrome
# trace_event file (open it in https://ui.perfetto.dev).
trace-demo:
	mkdir -p benchmarks/results
	REPRO_TRACE=benchmarks/results/full_reproduction.trace.json \
		python examples/full_reproduction.py
	@echo "trace written to benchmarks/results/full_reproduction.trace.json"

clean:
	rm -rf .pytest_cache benchmarks/results build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
