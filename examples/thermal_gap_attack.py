#!/usr/bin/env python3
"""The thermal-gap attack: pre-heat the die, then undervolt into the gap.

An extension scenario beyond the paper, built entirely from library
pieces.  The physics: dissipated power heats the die; at turbo
frequencies, heat slows the logic and *raises* the fault boundary.  A
countermeasure deployed with a characterization taken on a cool, idle
machine therefore trusts a boundary that is too deep once the box has
been busy for half a minute — and a patient attacker exploits exactly
that window.

The fix needs no new mechanism: characterize at both thermal extremes
and deploy the merged unsafe set.

Run:  python examples/thermal_gap_attack.py
"""

from __future__ import annotations

import numpy as np

from repro import COMET_LAKE, Machine
from repro.core import PollingCountermeasure
from repro.core.characterization import CharacterizationConfig, CharacterizationResult
from repro.core.unsafe_states import UnsafeStateSet
from repro.cpu.thermal import ThermalModel
from repro.errors import MachineCheckError
from repro.faults.imul import ImulLoop
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel

TURBO = 4.9


def characterize(temperature_c: float) -> UnsafeStateSet:
    """Algorithm 2 at a fixed die temperature (turbo point only)."""
    config = CharacterizationConfig(
        offset_start_mv=-30, offset_stop_mv=-250, offset_step_mv=2,
        frequencies_ghz=[TURBO],
    )
    fault_model = FaultModel(COMET_LAKE, temperature_c=temperature_c)
    injector = FaultInjector(fault_model, np.random.default_rng(5))
    loop = ImulLoop(config.iterations)
    result = CharacterizationResult(
        model=COMET_LAKE, config=config,
        unsafe_states=UnsafeStateSet(system=f"{temperature_c:.0f}C"),
    )
    for offset in config.offsets_mv():
        try:
            report = loop.run(injector, fault_model.conditions_for_offset(TURBO, offset))
        except MachineCheckError:
            result.unsafe_states.add_crash(TURBO, offset)
            break
        if report.fault_count:
            result.unsafe_states.add_unsafe(TURBO, offset)
    return result.unsafe_states


def attack(unsafe_set: UnsafeStateSet, offset: int, temperature: float) -> tuple:
    machine = Machine.build(COMET_LAKE, seed=17)
    machine.fault_model.set_temperature(temperature)
    module = PollingCountermeasure(machine, unsafe_set)
    machine.modules.insmod(module)
    machine.set_frequency(TURBO)
    machine.write_voltage_offset(offset)
    machine.advance(3 * COMET_LAKE.regulator_latency_s)
    report = machine.run_imul_window(iterations=2_000_000)
    return report.fault_count, module.stats.detections


def main() -> None:
    thermal = ThermalModel(COMET_LAKE)
    cool = thermal.parameters.ambient_c
    thermal.set_operating_point(TURBO, 0.0, now=0.0)
    hot = thermal.temperature_c(30.0)
    print(f"[1] Warming up: sustained {TURBO} GHz turbo for 30 s "
          f"takes the die {cool:.0f} C -> {hot:.0f} C")

    cool_set = characterize(cool)
    hot_set = characterize(hot)
    cool_boundary = cool_set.boundary_mv(TURBO)
    hot_boundary = hot_set.boundary_mv(TURBO)
    print(f"[2] Turbo fault boundary: {cool_boundary:.0f} mV cool, "
          f"{hot_boundary:.0f} mV hot "
          f"(gap: {hot_boundary - cool_boundary:.0f} mV)")

    gap = int((cool_boundary + hot_boundary) / 2)
    print(f"[3] Attacker pre-heats the box, then undervolts to {gap} mV...")
    faults, detections = attack(cool_set, gap, hot)
    print(f"    vs cool-only characterization: {faults} faults, "
          f"{detections} detections -> ATTACK SUCCEEDS")

    merged = cool_set.merge(hot_set)
    faults, detections = attack(merged, gap, hot)
    print(f"    vs merged cool+hot characterization: {faults} faults, "
          f"{detections} detections -> attack defeated")

    print("\nLesson: run Algorithm 2 at both thermal extremes and deploy "
          "the union (UnsafeStateSet.merge).")


if __name__ == "__main__":
    main()
