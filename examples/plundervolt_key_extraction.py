#!/usr/bin/env python3
"""Plundervolt against an SGX enclave: RSA key theft, then prevention.

The scenario the paper defends against.  An enclave holds an RSA-CRT
signing key; a privileged adversary cannot read enclave memory, but can
undervolt the core the enclave runs on.  One faulty CRT signature and
the Bellcore gcd factors the modulus.

Act I  — undefended machine: the key falls.
Act II — same machine with the polling module: every signature verifies,
         the search finds no faulting operating point, the key survives.

Run:  python examples/plundervolt_key_extraction.py
"""

from __future__ import annotations

from repro import COMET_LAKE, Machine
from repro.attacks import PlundervoltAttack, PlundervoltConfig, RSACRTSigner, RSAKey
from repro.core import CharacterizationFramework, PollingCountermeasure
from repro.sgx import (
    PLUG_YOUR_VOLT_POLICY,
    AttestationService,
    EnclaveHost,
    RemoteProvisioner,
    verify_report,
)
from repro.errors import AttestationError


def mount_attack(machine: Machine, key: RSAKey) -> None:
    host = EnclaveHost(machine)
    enclave = host.create_enclave("rsa-signing-service", core_index=0)
    signer = RSACRTSigner(key)
    attack = PlundervoltAttack(
        machine,
        enclave,
        signer,
        message=0x5EC2E7,
        config=PlundervoltConfig(frequency_ghz=2.0),
    )
    outcome = attack.mount()
    for note in outcome.notes:
        print(f"    note: {note}")
    print(f"    signing attempts: {outcome.attempts}")
    print(f"    faulty signatures: {outcome.faults_observed}")
    if outcome.succeeded:
        p, q = outcome.recovered_secret
        print(f"    KEY EXTRACTED: n = p*q with p={hex(p)[:18]}..., q={hex(q)[:18]}...")
        assert (p, q) == tuple(sorted((key.p, key.q)))
    else:
        print("    attack FAILED: no exploitable fault ever occurred")


def main() -> None:
    key = RSAKey.generate(512, seed=1337)
    print(f"victim key: {key.n.bit_length()}-bit RSA modulus inside an enclave\n")

    print("=== Act I: undefended machine ===")
    mount_attack(Machine.build(COMET_LAKE, seed=11), key)

    print("\n=== Act II: polling countermeasure deployed ===")
    unsafe = CharacterizationFramework(COMET_LAKE, seed=5).run().unsafe_states
    machine = Machine.build(COMET_LAKE, seed=11)
    module = PollingCountermeasure(machine, unsafe)
    machine.modules.insmod(module)

    # The paper's attestation twist: the module's load state — not the
    # OCM's disabled state — is what the remote verifier checks.
    service = AttestationService(machine)
    host = EnclaveHost(machine)
    probe = host.create_enclave("attestation-probe")
    verify_report(service.generate(probe), PLUG_YOUR_VOLT_POLICY)
    print("    remote attestation: countermeasure module verified loaded")

    mount_attack(machine, key)
    print(f"    module intervened {module.stats.detections} times")

    print("\n=== Epilogue: unloading the module does not go unnoticed ===")
    machine.modules.rmmod(module.name)
    try:
        verify_report(service.generate(probe), PLUG_YOUR_VOLT_POLICY)
    except AttestationError as error:
        print(f"    re-attestation failed as designed: {error}")

    # And the concrete consequence: the remote party now withholds keys.
    provisioner = RemoteProvisioner(b"next-rotation-signing-key", PLUG_YOUR_VOLT_POLICY)
    try:
        provisioner.provision(service.generate(probe, nonce=provisioner.challenge()))
    except AttestationError:
        print("    key rotation DENIED: no countermeasure, no secrets")


if __name__ == "__main__":
    main()
