#!/usr/bin/env python3
"""Characterizing a CPU model that is not in the paper.

The library's CPU catalog is extensible: define a new
:class:`~repro.cpu.CPUModel` (frequency table, process, critical path,
guardbands, latencies) and the whole pipeline — characterization,
countermeasure, attacks — works unchanged.  This example invents a
fictional low-power part, characterizes it, renders its Fig. 2-style
map, and deploys a protected configuration.

Run:  python examples/characterize_custom_cpu.py
"""

from __future__ import annotations

from repro.analysis import render_characterization_map, summarize
from repro.core import CharacterizationFramework, PollingCountermeasure
from repro.cpu import CPUModel, FrequencyTable
from repro.testbench import Machine
from repro.timing.constants import ProcessCharacteristics

# A fictional 10 nm-class low-power part.
WHISPER_LAKE = CPUModel(
    name="Simulated Core m5-0001Y CPU @ 1.20GHz",
    codename="Whisper Lake",
    microcode=0x0A,
    core_count=2,
    frequency_table=FrequencyTable(min_ghz=0.4, max_ghz=2.8, base_ghz=1.2),
    process=ProcessCharacteristics(
        vth_volts=0.50,
        alpha=1.28,
        t_setup_ps=13.0,
        t_eps_ps=7.0,
        v_retention_volts=0.53,
        reference_voltage_volts=0.95,
    ),
    path_delay_ps=300.0,
    guardband=0.08,
    v_floor_volts=0.68,
    v_margin_volts=0.05,
    sigma_mv=9.0,
    crash_fraction=0.75,
    regulator_latency_s=700e-6,
    regulator_raise_latency_s=90e-6,
    msr_ioctl_latency_s=0.9e-6,
)


def main() -> None:
    print(f"=== {WHISPER_LAKE.describe()} ===\n")

    print("[1] Running Algorithm 2 on the custom part...")
    result = CharacterizationFramework(WHISPER_LAKE, seed=5).run()
    summary = summarize(result)
    print(f"    frequencies characterized: {summary.frequencies}")
    print(f"    fault boundary range: {summary.deepest_fault_mv:.0f} .. "
          f"{summary.shallowest_fault_mv:.0f} mV")
    print(f"    mean fault-band width: {summary.mean_fault_band_width_mv:.0f} mV")
    print(f"    maximal safe state: {summary.maximal_safe_mv:.0f} mV\n")

    print(render_characterization_map(result, offset_bin_mv=20))

    print("\n[2] Deploying the polling countermeasure on the custom part...")
    machine = Machine.build(WHISPER_LAKE, seed=7)
    module = PollingCountermeasure(machine, result.unsafe_states)
    machine.modules.insmod(module)

    boundary = int(result.unsafe_states.boundary_mv(1.2))
    machine.set_frequency(1.2)
    machine.write_voltage_offset(boundary - 20)
    machine.advance(5e-3)
    report = machine.run_imul_window(iterations=1_000_000)
    print(f"    attack write at {boundary - 20} mV -> faults observed: "
          f"{report.fault_count} (detections: {module.stats.detections})")
    assert report.fault_count == 0

    print("\nThe pipeline generalizes to any CPUModel — define yours and "
          "characterize away.")


if __name__ == "__main__":
    main()
