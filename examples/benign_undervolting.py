#!/usr/bin/env python3
"""Benign undervolting under the three countermeasure philosophies.

The paper's motivating tension: a laptop user undervolts to stretch
battery life — a perfectly legitimate use of the DVFS interface — while
an SGX enclave is running.  What happens under each defense?

* Intel SA-00289 (access control): the benign request is rejected; the
  user gets no power savings until the enclave exits.
* Minefield (deflection): the request passes, but the protection paid
  for it with a hefty instruction-count overhead — and collapses the
  moment the adversary single-steps.
* Plug Your Volt (polling): the request passes untouched because it is
  a *safe state*; protection and power savings coexist.

Run:  python examples/benign_undervolting.py
"""

from __future__ import annotations

import numpy as np

from repro import KABY_LAKE_R, Machine
from repro.core import CharacterizationFramework, PollingCountermeasure
from repro.defenses import AccessControlDefense, MinefieldDefense, WindowVerdict
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel
from repro.sgx import EnclaveHost

#: The laptop user's power-saving request: a shallow, safe undervolt.
BENIGN_OFFSET_MV = -45


def estimated_power_savings(offset_mv: float, base_voltage: float) -> float:
    """Dynamic power scales with V^2: savings from a small undervolt."""
    v = base_voltage + offset_mv * 1e-3
    return 1.0 - (v / base_voltage) ** 2


def scenario_access_control() -> None:
    print("--- Intel SA-00289 (access control) ---")
    machine = Machine.build(KABY_LAKE_R, seed=3)
    host = EnclaveHost(machine)
    defense = AccessControlDefense(machine, host)
    defense.deploy()
    host.create_enclave("banking-enclave")
    accepted = machine.write_voltage_offset(BENIGN_OFFSET_MV)
    print(f"    benign {BENIGN_OFFSET_MV} mV request accepted: {accepted}")
    print(f"    blocked benign requests: {defense.blocked_benign_requests}")
    print("    power savings while the enclave runs: 0.0%")


def scenario_minefield() -> None:
    print("--- Minefield (deflection) ---")
    defense = MinefieldDefense(density=2.0)
    defense.deploy()
    print(f"    benign {BENIGN_OFFSET_MV} mV request accepted: True (DVFS untouched)")
    print(f"    but enclave instruction-count overhead: "
          f"{defense.overhead_fraction() * 100:.0f}%")
    # And under single-stepping the deflection achieves nothing:
    fault_model = FaultModel(KABY_LAKE_R)
    injector = FaultInjector(fault_model, np.random.default_rng(3))
    vcrit = fault_model.critical_voltage(2.0)
    unsafe = type(fault_model.conditions_for_offset(2.0, 0.0))(2.0, vcrit - 0.003, -999)
    verdicts = [
        defense.run_protected_window(injector, unsafe, 500_000, single_stepped=True)
        for _ in range(30)
    ]
    exploited = sum(v is WindowVerdict.EXPLOITED for v in verdicts)
    print(f"    single-stepped attack attempts exploited: {exploited}/30 "
          f"(0 detected)")


def scenario_polling() -> None:
    print("--- Plug Your Volt (polling, this paper) ---")
    unsafe = CharacterizationFramework(KABY_LAKE_R, seed=5).run().unsafe_states
    machine = Machine.build(KABY_LAKE_R, seed=3)
    module = PollingCountermeasure(machine, unsafe)
    machine.modules.insmod(module)
    host = EnclaveHost(machine)
    host.create_enclave("banking-enclave")
    accepted = machine.write_voltage_offset(BENIGN_OFFSET_MV)
    machine.advance(3e-3)
    applied = machine.processor.core(0).applied_offset_mv(machine.now)
    base = machine.processor.vf_curve.base_voltage(1.6)
    savings = estimated_power_savings(applied, base)
    print(f"    benign {BENIGN_OFFSET_MV} mV request accepted: {accepted}")
    print(f"    applied offset: {applied:.0f} mV (module detections: "
          f"{module.stats.detections})")
    print(f"    dynamic-power savings while protected: {savings * 100:.1f}%")
    print(f"    countermeasure CPU cost: {module.duty_cycle() * 100:.2f}% of one core")


def main() -> None:
    print("A laptop user undervolts by "
          f"{BENIGN_OFFSET_MV} mV while an SGX enclave is running.\n")
    scenario_access_control()
    print()
    scenario_minefield()
    print()
    scenario_polling()
    print("\nOnly the safe-state countermeasure delivers protection AND "
          "the power savings.")


if __name__ == "__main__":
    main()
