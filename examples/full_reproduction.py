#!/usr/bin/env python3
"""One-command reproduction of every experiment in the paper.

Runs, in order:

1. the Figs. 2-4 characterizations (all three CPUs) with region summaries;
2. the Sec. 4.3 prevention matrix (attack campaigns vs the polling module);
3. the Table 2 SPEC2017 overhead measurement;
4. the Sec. 5 maximal-safe-state analysis and deeper deployments;
5. a live turnaround trace: watch the countermeasure intercept a write;
6. (optional) a structured telemetry trace export of a full prevention
   run — set ``REPRO_TRACE=/path/to/trace.json`` to produce a Chrome
   ``trace_event`` file you can open in https://ui.perfetto.dev
   (``REPRO_TRACE_FORMAT=jsonl`` switches the format).

Takes a few seconds end to end.  For the full artifact set with shape
assertions, run ``pytest benchmarks/ --benchmark-only`` instead.

Run:  python examples/full_reproduction.py
      REPRO_TRACE=trace.json python examples/full_reproduction.py
"""

from __future__ import annotations

import os
from collections import Counter

from repro import COMET_LAKE, PAPER_MODEL_TUPLE, Machine
from repro.analysis import VoltageTracer, render_table, summarize
from repro.attacks import ImulCampaign
from repro.bench import SpecOverheadRunner
from repro.core import (
    CharacterizationFramework,
    MicrocodeGuard,
    PollingCountermeasure,
)
from repro.telemetry import Telemetry

SEED = 5


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    # -- 1. characterizations (Figs. 2-4) ------------------------------------
    section("1. Safe/unsafe characterization — Figs. 2, 3, 4")
    characterizations = {}
    rows = []
    for model in PAPER_MODEL_TUPLE:
        result = CharacterizationFramework(model, seed=SEED).run()
        characterizations[model.codename] = result
        s = summarize(result)
        rows.append(
            (
                model.codename,
                s.frequencies,
                f"{s.deepest_fault_mv:.0f}..{s.shallowest_fault_mv:.0f} mV",
                f"{s.mean_fault_band_width_mv:.0f} mV",
                f"{s.maximal_safe_mv:.0f} mV",
            )
        )
    print(render_table(
        ["CPU", "freqs", "fault boundary", "band width", "maximal safe"], rows
    ))

    # -- 2. prevention (Sec. 4.3) ----------------------------------------------
    section("2. Complete prevention — Sec. 4.3")
    rows = []
    for model in PAPER_MODEL_TUPLE:
        result = characterizations[model.codename]
        base = model.frequency_table.base_ghz
        boundary = int(result.unsafe_states.boundary_mv(base))
        offsets = (boundary - 5, boundary - 10, boundary - 15, -300)
        for protected in (False, True):
            machine = Machine.build(model, seed=11)
            if protected:
                machine.modules.insmod(
                    PollingCountermeasure(machine, result.unsafe_states)
                )
            outcome = ImulCampaign(
                machine, frequency_ghz=base, offsets_mv=offsets,
                iterations_per_point=500_000,
            ).mount()
            rows.append(
                (
                    model.codename,
                    "polling" if protected else "none",
                    outcome.faults_observed,
                    outcome.crashes,
                )
            )
    print(render_table(["CPU", "defense", "faults", "crashes"], rows))

    # -- 3. Table 2 --------------------------------------------------------------
    section("3. SPEC2017 polling overhead — Table 2")
    machine = Machine.build(COMET_LAKE, seed=3)
    module = PollingCountermeasure(
        machine, characterizations["Comet Lake"].unsafe_states
    )
    machine.modules.insmod(module)
    report = SpecOverheadRunner(machine, module).run()
    print(f"polling duty cycle:   {report.polling_duty_cycle * 100:.2f}% of one core")
    print(f"mean base overhead:   {report.mean_base_overhead * 100:.2f}%  "
          "(paper headline: 0.28%)")
    print(f"mean peak overhead:   {report.mean_peak_overhead * 100:.2f}%")
    worst = min(report.rows, key=lambda r: r.base_slowdown)
    print(f"worst base row:       {worst.name} ({worst.base_slowdown * 100:+.2f}%)")

    # -- 4. Sec. 5 ------------------------------------------------------------------
    section("4. Maximal safe state and vendor deployments — Sec. 5")
    for model in PAPER_MODEL_TUPLE:
        maximal = characterizations[model.codename].maximal_safe_offset_mv()
        print(f"{model.codename:12s} maximal safe state: {maximal:.0f} mV")
    machine = Machine.build(COMET_LAKE, seed=9)
    machine.modules.insmod(
        PollingCountermeasure(machine, characterizations["Comet Lake"].unsafe_states)
    )
    guard = MicrocodeGuard(characterizations["Comet Lake"].maximal_safe_offset_mv())
    guard.apply(machine.processor)
    machine.write_voltage_offset(-250)
    print(f"microcode write-ignore: a -250 mV wrmsr was "
          f"{'dropped' if guard.ignored_writes else 'accepted'}")

    # -- 5. live trace -----------------------------------------------------------------
    section("5. Turnaround trace: one intercepted attack write")
    machine = Machine.build(COMET_LAKE, seed=13)
    module = PollingCountermeasure(
        machine, characterizations["Comet Lake"].unsafe_states
    )
    machine.modules.insmod(module)
    machine.set_frequency(2.0)
    tracer = VoltageTracer(machine, sample_period_s=100e-6)
    tracer.start()
    machine.write_voltage_offset(-250)
    machine.advance(2e-3)
    tracer.stop()
    print(tracer.render(stride=2))
    print(f"\ndeepest offset ever applied: {tracer.deepest_applied_offset_mv():.0f} mV "
          f"(attack target was -250 mV)")

    # -- 6. telemetry trace export (optional) -----------------------------------------
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        fmt = os.environ.get("REPRO_TRACE_FORMAT", "chrome")
        section("6. Structured telemetry trace of a full prevention run")
        export_prevention_trace(
            characterizations["Comet Lake"].unsafe_states, trace_path, fmt
        )


def export_prevention_trace(unsafe, trace_path: str, fmt: str = "chrome") -> None:
    """Record one attacked-then-protected run and export its trace.

    The scenario intentionally touches every instrumented layer so the
    exported file contains MSR ioctl spans, OCM transactions, regulator
    ramps, P-state transitions, fault injections, and the
    countermeasure's detection/remediation events on one sim timeline.
    """
    telemetry = Telemetry()
    machine = Machine.build(COMET_LAKE, seed=13, telemetry=telemetry)
    boundary = int(unsafe.boundary_mv(2.0))
    sampler = VoltageTracer(machine, sample_period_s=100e-6)
    sampler.start()

    # Phase A: undefended — the attack write lands and faults inject.
    machine.set_frequency(2.0)
    machine.write_voltage_offset(boundary - 12)
    machine.advance(1.5e-3)
    for _ in range(3):
        machine.run_imul_window(iterations=500_000)

    # Phase B: the module loads and intercepts a deeper write.
    module = PollingCountermeasure(machine, unsafe)
    machine.modules.insmod(module)
    machine.write_voltage_offset(-250)
    machine.advance(2e-3)
    machine.run_imul_window(iterations=500_000)
    sampler.stop()

    path = telemetry.export(trace_path, fmt=fmt)
    by_category = Counter(e.category for e in telemetry.tracer.events)
    print(f"exported {len(telemetry.tracer.events)} events to {path} ({fmt})")
    print("events by category: "
          + ", ".join(f"{c}={n}" for c, n in sorted(by_category.items())))
    print(f"detections in trace: {module.stats.detections}; "
          f"open in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
