#!/usr/bin/env python3
"""Quickstart: characterize, deploy the countermeasure, survive an attack.

Walks the paper's pipeline end to end on the simulated Comet Lake
machine (Intel i7-10510U):

1. run Algorithm 2 to characterize safe/unsafe (frequency, offset) pairs;
2. deploy Algorithm 3 — the polling kernel module — built on that set;
3. mount a Plundervolt-style undervolting campaign and watch it fail;
4. show that a benign power-saving undervolt keeps working throughout.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import COMET_LAKE, Machine
from repro.analysis import render_boundary_series
from repro.attacks import ImulCampaign
from repro.core import CharacterizationFramework, PollingCountermeasure


def main() -> None:
    print(f"=== {COMET_LAKE.describe()} ===\n")

    # -- Step 1: Algorithm 2 — characterize the system ----------------------
    print("[1] Characterizing safe/unsafe states (Algo 2)...")
    result = CharacterizationFramework(COMET_LAKE, seed=5).run()
    print(f"    probed {len(result.cells)} cells, {result.crashes} crashes")
    print(f"    maximal safe state: {result.maximal_safe_offset_mv():.0f} mV\n")
    print(render_boundary_series(result))

    # -- Step 2: Algorithm 3 — deploy the polling kernel module --------------
    print("\n[2] Deploying the polling countermeasure (Algo 3)...")
    machine = Machine.build(COMET_LAKE, seed=7)
    module = PollingCountermeasure(machine, result.unsafe_states)
    machine.modules.insmod(module)
    print(f"    module {module.name!r} loaded, period {module.period_s * 1e6:.0f} us,")
    print(f"    duty cycle {module.duty_cycle() * 100:.2f}% of one core\n")

    # -- Step 3: mount the attack -------------------------------------------
    print("[3] Mounting an undervolting fault campaign (Plundervolt-style)...")
    boundary = int(result.unsafe_states.boundary_mv(1.8))
    campaign = ImulCampaign(
        machine,
        frequency_ghz=1.8,
        offsets_mv=tuple(range(boundary, boundary - 40, -10)) + (-300,),
        iterations_per_point=1_000_000,
    )
    outcome = campaign.mount()
    print(f"    attack attempts:  {outcome.attempts}")
    print(f"    faults observed:  {outcome.faults_observed}")
    print(f"    machine crashes:  {outcome.crashes}")
    print(f"    module detections: {module.stats.detections}")
    assert outcome.faults_observed == 0 and outcome.crashes == 0

    # -- Step 4: benign DVFS still works -------------------------------------
    print("\n[4] Benign power-saving undervolt (-30 mV) while protected...")
    machine.write_voltage_offset(-30)
    machine.advance(3e-3)
    applied = machine.processor.core(0).applied_offset_mv(machine.now)
    print(f"    applied offset: {applied:.0f} mV (untouched by the module)")
    assert abs(applied + 30) <= 1.0

    print("\nComplete prevention with benign DVFS availability — the paper's claim.")


if __name__ == "__main__":
    main()
