#!/usr/bin/env python3
"""Sec. 5: pushing the countermeasure below the kernel.

The kernel module has a turnaround time (poll period + MSR ioctl cost +
regulator settle).  An *adaptive* adversary exploits it: pre-position an
undervolt that is safe for a low frequency, let it apply, then jump the
frequency so the already-applied voltage is suddenly unsafe — faults land
until the next poll reacts.

The maximal safe state makes two vendor-level deployments possible:

* Sec. 5.1 — a microcode update: the sequencer intercepts every
  ``wrmsr 0x150`` and *ignores* writes beyond the maximal safe state;
* Sec. 5.2 — a hardware MSR (``MSR_VOLTAGE_OFFSET_LIMIT``): over-deep
  writes are *clamped* to the limit, DRAM_MIN_PWR-style, and the limit
  register can be locked.

Both remove the turnaround entirely: the unsafe offset can never be
pre-positioned in the first place.

Run:  python examples/vendor_deployments.py
"""

from __future__ import annotations

from repro import COMET_LAKE, Machine
from repro.attacks import VoltJockeyAttack, VoltJockeyConfig
from repro.core import (
    CharacterizationFramework,
    MicrocodeGuard,
    PollingCountermeasure,
    install_msr_clamp,
)


def run_adaptive_attack(machine: Machine, offset_mv: int) -> None:
    outcome = VoltJockeyAttack(
        machine,
        VoltJockeyConfig(
            low_frequency_ghz=0.8,
            high_frequency_ghz=3.4,
            offset_mv=offset_mv,
            repetitions=3,
        ),
    ).mount()
    print(f"    window faults: {outcome.faults_observed}")
    print(f"    writes blocked: {outcome.writes_blocked}")
    print(f"    attack succeeded: {outcome.succeeded}")
    for note in outcome.notes:
        print(f"    note: {note}")


def main() -> None:
    print("[*] Characterizing Comet Lake and deriving the maximal safe state...")
    result = CharacterizationFramework(COMET_LAKE, seed=5).run()
    maximal = result.maximal_safe_offset_mv()
    print(f"    maximal safe state: {maximal:.0f} mV "
          "(safe at EVERY frequency in the table)")

    # The adaptive offset: safe at 0.8 GHz, inside the fault band at 3.4.
    cross = int(result.unsafe_states.boundary_mv(3.4)) - 10
    print(f"    adaptive cross-frequency offset: {cross} mV "
          f"(safe at 0.8 GHz, faults at 3.4 GHz)\n")

    print("=== Kernel-level polling alone (the residual window) ===")
    machine = Machine.build(COMET_LAKE, seed=9)
    module = PollingCountermeasure(machine, result.unsafe_states)
    machine.modules.insmod(module)
    print(f"    worst-case turnaround: {module.worst_case_turnaround_s() * 1e6:.0f} us")
    run_adaptive_attack(machine, cross)

    print("\n=== Sec. 5.1: microcode sequencer (write-ignore) ===")
    machine = Machine.build(COMET_LAKE, seed=9)
    machine.modules.insmod(PollingCountermeasure(machine, result.unsafe_states))
    guard = MicrocodeGuard(maximal)
    guard.apply(machine.processor)
    run_adaptive_attack(machine, cross)
    print(f"    microcode ignored {guard.ignored_writes} unsafe wrmsr")

    print("\n=== Sec. 5.2: MSR_VOLTAGE_OFFSET_LIMIT (hardware clamp) ===")
    machine = Machine.build(COMET_LAKE, seed=9)
    machine.modules.insmod(PollingCountermeasure(machine, result.unsafe_states))
    clamp = install_msr_clamp(machine.processor, maximal)
    run_adaptive_attack(machine, cross)
    print(f"    clamp engaged on {clamp.clamped_writes} writes "
          f"(limit locked: {clamp.locked})")

    print("\nThe deeper the deployment, the smaller the turnaround — down to zero.")


if __name__ == "__main__":
    main()
