"""Disabled-path cost of the telemetry + profiler hooks in the dispatch loop.

The paper's whole argument for the polling countermeasure is that its
steady-state cost is negligible (Table 2: 0.28% mean SPEC slowdown).
The reproduction's observability layer must hold itself to the same
standard: when no observer and no profiler are attached, the dispatch
loop pays exactly two ``is not None`` identity comparisons per event,
and this benchmark pins that cost against a hook-free baseline.

The baseline is a :class:`Simulator` subclass whose ``step()`` is the
same dispatch body with the hook checks deleted.  Both simulators
process an identical pre-scheduled event storm; timing interleaves the
two and keeps the minimum of many repeats, which discards scheduler
noise rather than averaging it in.  The relative overhead must stay
within the Table 2 sub-percent regime (budget configurable via
``REPRO_OVERHEAD_BUDGET``), padded by the measured noise floor of the
baseline raced against itself.
"""

from __future__ import annotations

import heapq
import json
import os
from time import perf_counter

from repro.kernel.sim import Simulator

from conftest import record_trajectory, write_artifact

#: Relative-overhead budget for the disabled hook path (1% default —
#: the same order as Table 2's 0.28% headline, with CI headroom).
BUDGET_ENV = "REPRO_OVERHEAD_BUDGET"
DEFAULT_BUDGET = 0.01

EVENTS_PER_RUN = 20_000
REPEATS = 25


class BareSimulator(Simulator):
    """The dispatch loop with the observer/profiler checks deleted."""

    def step(self) -> bool:  # noqa: D102 - same contract as Simulator.step
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self.processed_events += 1
            self._processed_counter.inc()
            entry.event.callback()
            return True
        return False


def _storm(simulator: Simulator, events: int) -> None:
    """Schedule ``events`` no-op timers at distinct times."""
    callback = lambda: None  # noqa: E731 - identical object for both runs
    for index in range(events):
        simulator.schedule((index + 1) * 1e-6, callback)


def _drain(factory) -> float:
    simulator = factory()
    _storm(simulator, EVENTS_PER_RUN)
    start = perf_counter()
    simulator.run()
    elapsed = perf_counter() - start
    assert simulator.processed_events == EVENTS_PER_RUN
    return elapsed


def _min_interleaved(factories) -> list:
    """Min-of-N wall time per factory, interleaving the contenders."""
    best = [float("inf")] * len(factories)
    for _ in range(REPEATS):
        for index, factory in enumerate(factories):
            best[index] = min(best[index], _drain(factory))
    return best


def test_disabled_hooks_cost_within_table2_budget():
    budget = float(os.environ.get(BUDGET_ENV, DEFAULT_BUDGET))
    # Three contenders, interleaved: the bare loop twice (its spread is
    # the noise floor of this machine right now) and the real loop with
    # both hooks detached.
    bare_a, bare_b, hooked = _min_interleaved(
        [BareSimulator, BareSimulator, Simulator]
    )
    bare = min(bare_a, bare_b)
    noise = abs(bare_a - bare_b) / bare
    overhead = (hooked - bare) / bare
    allowance = budget + 2.0 * noise
    artifact = {
        "events_per_run": EVENTS_PER_RUN,
        "repeats": REPEATS,
        "bare_s": bare,
        "hooked_s": hooked,
        "noise_floor": noise,
        "relative_overhead": overhead,
        "budget": budget,
        "allowance": allowance,
        "within_budget": overhead <= allowance,
    }
    write_artifact(
        "telemetry_overhead.json",
        json.dumps(artifact, sort_keys=True, indent=2),
    )
    record_trajectory(
        "telemetry_overhead",
        "relative_overhead",
        overhead,
        unit="ratio",
        context={"events_per_run": EVENTS_PER_RUN, "repeats": REPEATS},
    )
    assert overhead <= allowance, (
        f"disabled-hook dispatch overhead {overhead * 100:.2f}% exceeds "
        f"budget {budget * 100:.2f}% + noise floor {noise * 100:.2f}%"
    )
