"""Ablation: the two turnaround-time contributors of Sec. 5.

The paper names (1) the ioctl cost of the MSR driver and (2) the
regulator's apply delay as the contributors to the kernel module's
turnaround time, and argues that a microcode/MSR deployment removes
both.  This sweep varies each contributor and measures the adaptive
frequency-jump attack's fault window — showing when polling's margin
erodes and that the turnaround model predicts it.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.analysis.report import render_table
from repro.attacks import VoltJockeyAttack, VoltJockeyConfig
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.testbench import Machine

from conftest import characterize, write_artifact

#: Raise-latency multipliers applied to the remediation path.
RAISE_SCALES = (0.25, 1.0, 4.0, 16.0)

#: ioctl latency multipliers (the paper's contributor 1).
IOCTL_SCALES = (1.0, 100.0, 1000.0)


def run_sweep() -> List[tuple]:
    result = characterize(COMET_LAKE)
    cross_offset = int(result.unsafe_states.boundary_mv(3.4)) - 10
    rows = []
    for raise_scale in RAISE_SCALES:
        for ioctl_scale in IOCTL_SCALES:
            model = dataclasses.replace(
                COMET_LAKE,
                regulator_raise_latency_s=COMET_LAKE.regulator_raise_latency_s
                * raise_scale,
                msr_ioctl_latency_s=COMET_LAKE.msr_ioctl_latency_s * ioctl_scale,
            )
            machine = Machine.build(model, seed=9)
            module = PollingCountermeasure(machine, result.unsafe_states)
            machine.modules.insmod(module)
            outcome = VoltJockeyAttack(
                machine,
                VoltJockeyConfig(0.8, 3.4, offset_mv=cross_offset, repetitions=3),
            ).mount()
            rows.append(
                (
                    raise_scale,
                    ioctl_scale,
                    module.worst_case_turnaround_s(),
                    outcome.faults_observed,
                )
            )
    return rows


def test_ablation_turnaround(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = render_table(
        ["raise-latency x", "ioctl x", "worst turnaround (us)", "window faults"],
        [
            (f"{rs:g}", f"{io:g}", f"{turnaround * 1e6:.0f}", faults)
            for rs, io, turnaround, faults in rows
        ],
        title="Turnaround-time ablation (adaptive frequency-jump, Comet Lake)",
    )
    write_artifact("ablation_turnaround.txt", text)

    by_key = {(rs, io): (t, f) for rs, io, t, f in rows}
    # Longer raise latency -> strictly larger turnaround bound and at
    # least as many window faults.
    for io in IOCTL_SCALES:
        turnarounds = [by_key[(rs, io)][0] for rs in RAISE_SCALES]
        assert turnarounds == sorted(turnarounds)
        faults = [by_key[(rs, io)][1] for rs in RAISE_SCALES]
        assert faults[0] <= faults[-1]
    # The window grows materially when the regulator raise is 16x slower.
    assert by_key[(16.0, 1.0)][1] > by_key[(0.25, 1.0)][1]
    # ioctl cost is the minor contributor at realistic scales (x100 of a
    # sub-microsecond latency barely moves the bound).
    base = by_key[(1.0, 1.0)][0]
    assert by_key[(1.0, 100.0)][0] - base < 0.3e-3
