"""Observation O3 as a measure: the exposed attack surface.

The paper root-causes DVFS attacks to the adversary's ability to search
the whole (frequency, voltage) space for faulting pairs.  This benchmark
performs that adversarial search through the public interfaces against
an undefended and a protected Comet Lake machine and reports the *size*
of the discovered attack surface — the countermeasure's job, stated as a
number, is to take it to zero.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.attacks.search import AttackSurfaceScan
from repro.cpu import COMET_LAKE
from repro.experiments import characterization, protected_machine
from repro.testbench import Machine

from conftest import write_artifact


def run_scans() -> tuple:
    undefended = AttackSurfaceScan(Machine.build(COMET_LAKE, seed=47)).run()
    machine, module = protected_machine(COMET_LAKE, seed=47)
    protected = AttackSurfaceScan(machine).run()
    return undefended, protected, module


def test_attack_surface(benchmark):
    undefended, protected, module = benchmark.pedantic(
        run_scans, rounds=1, iterations=1
    )
    rows = [
        (
            "undefended",
            len(undefended.points),
            undefended.attack_surface,
            len(undefended.crash_points()),
        ),
        (
            "polling",
            len(protected.points),
            protected.attack_surface,
            len(protected.crash_points()),
        ),
    ]
    text = render_table(
        ["defense", "grid points probed", "faulting pairs found", "crash pairs"],
        rows,
        title="Adversarial (frequency, voltage) search — observation O3 (Comet Lake)",
    )
    sample = undefended.faulting_points()[:6]
    text += "\n\nundefended faulting pairs (sample): " + ", ".join(
        f"({p.frequency_ghz:.1f} GHz, {p.offset_mv} mV)" for p in sample
    )
    write_artifact("attack_surface.txt", text)

    # The undefended machine exposes a real surface (faults and crashes).
    assert undefended.attack_surface >= 3
    assert len(undefended.crash_points()) >= 3
    # Every discovered pair is genuinely in the characterized unsafe set.
    unsafe = characterization(COMET_LAKE).unsafe_states
    for point in undefended.faulting_points():
        assert unsafe.is_unsafe(point.frequency_ghz, point.offset_mv)
    # Under the countermeasure the surface collapses to zero.
    assert protected.attack_surface == 0
    assert len(protected.crash_points()) == 0
    assert module.stats.detections > 0
