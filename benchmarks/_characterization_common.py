"""Shared body for the Figs. 2-4 characterization benchmarks."""

from __future__ import annotations

from repro.analysis.export import boundary_to_csv, characterization_to_json
from repro.analysis.regions import extract_regions, summarize
from repro.analysis.report import render_boundary_series, render_characterization_map
from repro.core.characterization import CharacterizationFramework, CharacterizationResult
from repro.cpu import CPUModel

from conftest import write_artifact


def run_characterization(model: CPUModel) -> CharacterizationResult:
    """The timed experiment: the full Algo 2 sweep for one CPU."""
    return CharacterizationFramework(model, seed=5).run()


def render_and_check(result: CharacterizationResult, artifact: str) -> str:
    """Render the figure, persist it, and assert the paper's shape claims."""
    text = (
        render_characterization_map(result)
        + "\n\n"
        + render_boundary_series(result)
        + "\n\n"
        + f"maximal safe state: {result.maximal_safe_offset_mv():.0f} mV"
    )
    write_artifact(artifact, text)
    stem = artifact.rsplit(".", 1)[0]
    write_artifact(f"{stem}.csv", boundary_to_csv(result).rstrip())
    write_artifact(f"{stem}.json", characterization_to_json(result))

    model = result.model
    regions = extract_regions(result)
    # Claim 1: every frequency exhibits a safe undervolt band before any
    # fault ("a range of under-volted offsets where no DVFS related
    # faults are observed").
    assert len(regions) == len(model.frequency_table)
    for region in regions:
        assert region.first_fault_mv is not None
        assert region.first_fault_mv <= -40.0
    # Claim 2: past the boundary a fault band manifests, bounded from
    # below by a crash ("until we observe a system crash").
    for region in regions:
        assert region.crash_mv is not None
        assert region.crash_mv < region.first_fault_mv
    # Claim 3: the boundary depends on frequency (this is what makes the
    # unsafe set two-dimensional and the maximal safe state non-trivial).
    summary = summarize(result)
    assert summary.deepest_fault_mv < summary.shallowest_fault_mv - 40.0
    # Claim 4: a frequency-independent maximal safe state exists.
    maximal = result.maximal_safe_offset_mv()
    assert -150.0 < maximal < 0.0
    for region in regions:
        assert maximal > region.first_fault_mv
    return text
