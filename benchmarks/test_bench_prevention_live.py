"""Live-victim prevention: the EXECUTE thread running *while* attacked.

The discrete-window campaigns of ``test_bench_prevention`` sample the
victim after each attack step; this benchmark is the stricter version —
a :class:`~repro.kernel.victim.ContinuousVictim` executes imul chunks
back-to-back on the event timeline while the attacker manipulates the
DVFS interfaces around it, so *any* instant of electrically-unsafe
operation shows up as a fault burst with a timestamp.  The voltage trace
recorded alongside pins the causality.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.analysis.timeline import VoltageTracer
from repro.core import PollingCountermeasure
from repro.core.verification import verify_deployment
from repro.cpu import COMET_LAKE
from repro.kernel.victim import ContinuousVictim
from repro.testbench import Machine

from conftest import characterize, write_artifact

ATTACK_SEQUENCE_MS = 25.0


def attack_timeline(machine: Machine, boundary: int) -> None:
    """A varied 25 ms attack script exercising every interface."""
    machine.set_frequency(2.0)
    machine.advance(2e-3)
    machine.write_voltage_offset(boundary - 10)   # fault band
    machine.advance(5e-3)
    machine.write_voltage_offset(-300)            # crash depth
    machine.advance(5e-3)
    machine.write_voltage_offset(boundary + 25)   # benign-safe
    machine.advance(3e-3)
    machine.set_frequency(4.9)                    # frequency excursion
    machine.advance(3e-3)
    machine.write_voltage_offset(boundary - 20)
    machine.advance(5e-3)
    machine.write_voltage_offset(0)
    machine.advance(2e-3)


def run_live(protected: bool) -> tuple:
    result = characterize(COMET_LAKE)
    boundary = int(result.unsafe_states.boundary_mv(2.0))
    machine = Machine.build(COMET_LAKE, seed=29)
    module = None
    if protected:
        module = PollingCountermeasure(machine, result.unsafe_states)
        machine.modules.insmod(module)
    victim = ContinuousVictim(machine, chunk_ops=50_000)
    tracer = VoltageTracer(machine, sample_period_s=100e-6)
    victim.start()
    tracer.start()
    attack_timeline(machine, boundary)
    victim.stop()
    tracer.stop()
    return victim.trace, tracer, module


def test_prevention_live_victim(benchmark):
    def body():
        return run_live(False), run_live(True)

    (unprotected, unprotected_trace, _), (protected, protected_trace, module) = (
        benchmark.pedantic(body, rounds=1, iterations=1)
    )
    rows = [
        (
            "undefended",
            unprotected.ops,
            unprotected.total_faults,
            unprotected.crashes,
            f"{unprotected_trace.deepest_applied_offset_mv():.0f}",
        ),
        (
            "polling",
            protected.ops,
            protected.total_faults,
            protected.crashes,
            f"{protected_trace.deepest_applied_offset_mv():.0f}",
        ),
    ]
    text = render_table(
        ["defense", "victim ops", "faults", "crashes", "deepest applied (mV)"],
        rows,
        title="Live EXECUTE thread under a 25 ms attack script (Comet Lake)",
    )
    bursts = unprotected.fault_windows()[:5]
    text += "\n\nundefended fault bursts (first 5): " + ", ".join(
        f"t={b.time_s * 1e3:.1f}ms @ {b.offset_mv:.0f}mV" for b in bursts
    )
    write_artifact("prevention_live_victim.txt", text)

    # Undefended: the script's unsafe dwell produces faults and a crash.
    assert unprotected.total_faults > 0
    assert unprotected.crashes >= 1
    # Protected: a busy victim across the whole script sees nothing, and
    # the deep targets never became electrically effective.
    assert protected.total_faults == 0
    assert protected.crashes == 0
    assert protected_trace.deepest_applied_offset_mv() > -110
    assert module is not None and module.stats.detections >= 2
    # The victim actually executed comparable work in both runs.
    assert protected.ops > 0.5 * unprotected.ops


def test_verification_api_on_live_deployment(benchmark):
    def body():
        result = characterize(COMET_LAKE)
        machine = Machine.build(COMET_LAKE, seed=31)
        machine.modules.insmod(
            PollingCountermeasure(machine, result.unsafe_states)
        )
        return verify_deployment(machine, result.unsafe_states, samples=12)

    report = benchmark.pedantic(body, rounds=1, iterations=1)
    write_artifact("deployment_verification.txt", report.summary())
    assert report.passed
