"""Fig. 4: safe/unsafe characterization of Comet Lake (Algo 2 sweep).

Regenerates the full frequency x offset grid — the frequency table at
0.1 GHz resolution against undervolt offsets -1..-300 mV, one million
imul iterations per cell — and renders the safe/fault/crash map plus the
per-frequency boundary series.
"""

from __future__ import annotations

from repro.cpu import COMET_LAKE

from _characterization_common import render_and_check, run_characterization


def test_fig4_cometlake_characterization(benchmark):
    result = benchmark.pedantic(
        run_characterization, args=(COMET_LAKE,), rounds=1, iterations=1
    )
    render_and_check(result, "fig4_cometlake_characterization.txt")
