"""Sec. 4.3 claim: the polling module completely eliminates DVFS faults.

Re-runs the published attack campaigns (imul, Plundervolt RSA-CRT,
V0LTpwn, AES-DFA) against undefended and protected machines on all three
CPU generations via :func:`repro.experiments.prevention_matrix` and
tabulates faults, crashes and attack success — the reproduction of "our
countermeasure completely prevents DVFS faults on three Intel generation
CPUs".
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments import (
    PREVENTION_AES_KEY,
    PREVENTION_RSA_KEY,
    prevention_matrix,
)

from conftest import write_artifact


def test_prevention_all_cpus(benchmark):
    matrix = benchmark.pedantic(prevention_matrix, rounds=1, iterations=1)
    rendered = [
        (
            cell.codename,
            "polling" if cell.protected else "none",
            cell.outcome.attack,
            cell.outcome.faults_observed,
            cell.outcome.crashes,
            "yes" if cell.outcome.succeeded else "no",
        )
        for cell in matrix.cells
    ]
    write_artifact(
        "prevention_matrix.txt",
        render_table(
            ["CPU", "defense", "attack", "faults", "crashes", "succeeded"],
            rendered,
            title="Attack campaigns vs the polling countermeasure (Sec. 4.3)",
        ),
    )
    # Claims: every attack injects faults on the undefended machine and
    # achieves nothing — zero faults, zero crashes — under polling.
    assert matrix.protected_faults == 0
    for cell in matrix.outcomes(protected=True):
        assert cell.outcome.crashes == 0, (cell.codename, cell.outcome.attack)
        assert not cell.outcome.succeeded, (cell.codename, cell.outcome.attack)
    for codename in ("Sky Lake", "Kaby Lake R", "Comet Lake"):
        by_name = {
            c.outcome.attack: c.outcome
            for c in matrix.outcomes(codename=codename, protected=False)
        }
        assert by_name["imul-campaign"].faults_observed > 0, codename
        pv = by_name["plundervolt"]
        assert pv.succeeded and pv.recovered_secret == tuple(
            sorted((PREVENTION_RSA_KEY.p, PREVENTION_RSA_KEY.q))
        ), codename
        assert by_name["v0ltpwn"].succeeded, codename
        if "aes-dfa" in by_name:
            aes = by_name["aes-dfa"]
            assert aes.succeeded and aes.recovered_secret == PREVENTION_AES_KEY
