"""Engine acceptance: process-pool sharding reproduces the serial sweep.

Runs the full three-model Figs. 2-4 characterization once through the
``SerialExecutor`` and once sharded across a four-worker
``ParallelExecutor`` and asserts the folded results are byte-identical —
the engine's core contract.  On machines with at least four CPUs the
pool run must also be at least twice as fast; single-core CI boxes skip
the speedup assertion (the parity assertion always runs).  The merged
per-worker telemetry counters and the timing comparison are written to
``benchmarks/results/engine_campaign.json``.
"""

from __future__ import annotations

import json
import os
import pickle
import time

from repro.cpu import PAPER_MODEL_TUPLE
from repro.engine import (
    EngineSession,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
)

from conftest import record_trajectory, write_artifact

WORKERS = 4


def _sweep_all(session: EngineSession) -> list:
    # Pinned to the scalar row jobs: this bench's contract is executor
    # parity and the >=2x pool speedup over many small jobs.  The
    # vectorized path (fewer, fatter shards) has its own acceptance bench
    # in test_bench_characterization_vector.py.
    return [
        session.characterize(model, seed=5, batch=False)
        for model in PAPER_MODEL_TUPLE
    ]


def test_engine_parallel_parity_and_speedup(benchmark):
    serial = EngineSession(executor=SerialExecutor(), cache=ResultCache())
    start = time.perf_counter()
    serial_results = benchmark.pedantic(
        _sweep_all, args=(serial,), rounds=1, iterations=1
    )
    serial_s = time.perf_counter() - start

    with EngineSession(
        executor=ParallelExecutor(WORKERS), cache=ResultCache()
    ) as parallel:
        start = time.perf_counter()
        parallel_results = _sweep_all(parallel)
        parallel_s = time.perf_counter() - start
        parallel_counters = parallel.counters()

    # The engine contract: sharding across worker processes reproduces
    # the serial characterization byte for byte, per model.
    for model, a, b in zip(PAPER_MODEL_TUPLE, serial_results, parallel_results):
        assert pickle.dumps(a) == pickle.dumps(b), model.codename

    # Per-worker telemetry counters merge back into the session registry
    # identically to the serial fold.
    serial_counters = serial.counters()
    assert serial_counters["faults.windows"] > 0
    for name in ("faults.windows", "faults.injected", "engine.jobs_executed"):
        assert serial_counters.get(name) == parallel_counters.get(name), name

    cpus = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    write_artifact(
        "engine_campaign.json",
        json.dumps(
            {
                "workers": WORKERS,
                "cpu_count": cpus,
                "serial_seconds": serial_s,
                "parallel_seconds": parallel_s,
                "speedup": speedup,
                "serial_counters": serial_counters,
                "parallel_counters": parallel_counters,
                "serial_engine": serial.describe(),
            },
            indent=2,
            sort_keys=True,
        ),
    )
    record_trajectory(
        "engine_campaign",
        "serial_seconds",
        serial_s,
        context={"workers": WORKERS, "cpu_count": cpus},
    )
    # The >=2x claim needs real parallelism; on smaller boxes the parity
    # assertions above are the acceptance test and the artifact records
    # the (meaningless) single-core timing.
    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {WORKERS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )
