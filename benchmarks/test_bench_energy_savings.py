"""Ablation: the energy cost of denying benign DVFS.

The paper's availability argument made quantitative: how much power does
a benign process save by undervolting within the safe band — savings an
access-control defense forfeits entirely whenever an enclave is alive,
and the polling countermeasure preserves in full.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import render_table
from repro.cpu import COMET_LAKE
from repro.cpu.power import CorePowerModel

from conftest import characterize, write_artifact


def compute_rows() -> List[tuple]:
    unsafe = characterize(COMET_LAKE).unsafe_states
    power = CorePowerModel(COMET_LAKE)
    rows = []
    for frequency in (0.8, 1.2, 1.8, 2.4, 3.0, 4.0, 4.9):
        safe_offset = unsafe.safe_offset_mv(frequency)
        savings = power.undervolt_savings(frequency, safe_offset)
        rows.append(
            (
                frequency,
                safe_offset,
                power.power_at_offset_w(frequency, 0.0),
                power.power_at_offset_w(frequency, safe_offset),
                savings,
            )
        )
    return rows


def test_energy_savings_of_safe_undervolting(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    write_artifact(
        "energy_savings.txt",
        render_table(
            [
                "freq (GHz)",
                "deepest safe offset (mV)",
                "stock power (W)",
                "undervolted power (W)",
                "savings",
            ],
            [
                (
                    f"{f:.1f}",
                    f"{offset:.0f}",
                    f"{stock:.2f}",
                    f"{saved:.2f}",
                    f"{savings * 100:.1f}%",
                )
                for f, offset, stock, saved, savings in rows
            ],
            title="Power saved by safe-band undervolting (Comet Lake) — what "
            "access-control defenses deny, what polling preserves",
        ),
    )
    # Every frequency offers material savings within the safe band.
    for frequency, offset, stock, saved, savings in rows:
        assert offset < -30.0
        assert saved < stock
        assert 0.02 < savings < 0.5
    # Savings are largest where the safe band is deepest (low frequency).
    assert rows[0][4] > rows[-1][4] * 0.8
