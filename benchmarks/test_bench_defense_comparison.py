"""The countermeasure-philosophy comparison (Sec. 1 / Sec. 4.1).

Puts the three philosophies side by side on the axes the paper argues
about, via :func:`repro.experiments.defense_comparison`:

* does the defense prevent fault *injection* or only weaponization?
* can benign non-SGX processes keep using DVFS while SGX runs?
* does protection survive a single-stepping adversary?
* what does it cost?

Access control (Intel SA-00289) protects but kills benign DVFS;
Minefield keeps DVFS alive but collapses under single-stepping; the
paper's polling module is the only row with "yes" everywhere.
"""

from __future__ import annotations

from repro.analysis.report import render_defense_matrix, render_table
from repro.defenses import ACCESS_CONTROL_OVERHEAD
from repro.experiments import COMPARISON_ATTEMPTS, defense_comparison

from conftest import write_artifact


def test_defense_comparison(benchmark):
    comparison = benchmark.pedantic(defense_comparison, rounds=1, iterations=1)

    profiles = [
        {
            "defense": "intel-sa-00289",
            "prevents_injection": True,
            "benign_dvfs": not comparison.sa00289_blocks_benign,
            "single_step_robust": True,
            "hw_deployable": False,
            "overhead": ACCESS_CONTROL_OVERHEAD,
        },
        {
            "defense": "minefield",
            "prevents_injection": False,
            "benign_dvfs": True,
            "single_step_robust": comparison.minefield_detected_stepped > 0,
            "hw_deployable": False,
            "overhead": comparison.minefield_overhead,
        },
        {
            "defense": "plug-your-volt (polling)",
            "prevents_injection": True,
            "benign_dvfs": comparison.polling_benign_accepted,
            "single_step_robust": True,
            "hw_deployable": True,
            "overhead": comparison.polling_overhead,
        },
    ]
    matrix = render_defense_matrix(profiles)
    detail = render_table(
        ["observation", "value"],
        [
            ("SA-00289 blocks attack write", comparison.sa00289_blocks_attack),
            ("SA-00289 blocks BENIGN -30 mV request", comparison.sa00289_blocks_benign),
            ("Minefield detections (no stepping)", comparison.minefield_detected_plain),
            ("Minefield exploits (no stepping)", comparison.minefield_exploited_plain),
            ("Minefield detections (single-stepped)", comparison.minefield_detected_stepped),
            ("Minefield exploits (single-stepped)", comparison.minefield_exploited_stepped),
            ("polling: benign -30 mV accepted", comparison.polling_benign_accepted),
            (
                "polling: benign offset applied (mV)",
                f"{comparison.polling_benign_applied_mv:.0f}",
            ),
            (
                "polling: -250 mV attack ends up at (mV)",
                f"{comparison.polling_attack_applied_mv:.0f}",
            ),
        ],
        title="Per-philosophy observations",
    )
    write_artifact("defense_comparison.txt", matrix + "\n\n" + detail)

    # The paper's comparative claims.
    assert comparison.sa00289_blocks_attack and comparison.sa00289_blocks_benign
    assert comparison.minefield_detected_plain > 0
    assert comparison.minefield_detected_stepped == 0
    assert comparison.minefield_exploited_stepped == COMPARISON_ATTEMPTS
    assert comparison.polling_benign_accepted
    assert abs(comparison.polling_benign_applied_mv + 30) <= 1.0
    assert comparison.polling_attack_applied_mv > -100
    assert comparison.polling_overhead < comparison.minefield_overhead
    assert comparison.polling_overhead < ACCESS_CONTROL_OVERHEAD
