"""Extension: the thermal-gap attack and its mitigation.

A sustained turbo workload self-heats the die; at turbo frequencies heat
*raises* the critical voltage, so the true fault boundary drifts
shallower than the one characterized on a cool, idle machine.  An
attacker who first warms the box can then undervolt into the *gap* —
offsets the cool characterization recorded as safe but which fault on
hot silicon — and the polling module, trusting its cool unsafe set, does
not intervene.

Mitigation, using only existing machinery: characterize at both thermal
extremes and deploy the merged unsafe set
(:meth:`~repro.core.unsafe_states.UnsafeStateSet.merge`), exactly the
rule the temperature ablation derives.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core import PollingCountermeasure
from repro.core.characterization import CharacterizationConfig, CharacterizationFramework
from repro.cpu import COMET_LAKE
from repro.cpu.thermal import ThermalModel
from repro.faults.margin import FaultModel
from repro.testbench import Machine

from conftest import write_artifact

TURBO_GHZ = 4.9


def characterize_at_temperature(temperature_c: float):
    config = CharacterizationConfig(
        offset_start_mv=-30, offset_stop_mv=-250, offset_step_mv=2,
        frequencies_ghz=[2.0, 3.4, TURBO_GHZ],
    )
    framework = CharacterizationFramework(COMET_LAKE, config=config, seed=5)
    # The direct-mode framework builds its own fault model; rebuild the
    # sweep with the requested die temperature.
    framework_run = framework.run  # noqa: F841  (structure note)
    import numpy as np

    from repro.core.characterization import CharacterizationResult
    from repro.core.unsafe_states import UnsafeStateSet
    from repro.errors import MachineCheckError
    from repro.faults.imul import ImulLoop
    from repro.faults.injector import FaultInjector

    fault_model = FaultModel(COMET_LAKE, temperature_c=temperature_c)
    injector = FaultInjector(fault_model, np.random.default_rng(5))
    loop = ImulLoop(config.iterations)
    result = CharacterizationResult(
        model=COMET_LAKE, config=config,
        unsafe_states=UnsafeStateSet(system=f"{temperature_c:.0f}C"),
    )
    for frequency in config.frequencies_ghz:
        for offset in config.offsets_mv():
            conditions = fault_model.conditions_for_offset(frequency, offset)
            try:
                report = loop.run(injector, conditions)
            except MachineCheckError:
                result.unsafe_states.add_crash(frequency, offset)
                break
            if report.fault_count:
                result.unsafe_states.add_unsafe(frequency, offset)
    return result


def attack_gap(unsafe_set, gap_offset: int, hot_temperature: float) -> tuple:
    """Undervolt to the gap offset on a hot machine protected by the set."""
    machine = Machine.build(COMET_LAKE, seed=17)
    machine.fault_model.set_temperature(hot_temperature)
    module = PollingCountermeasure(machine, unsafe_set)
    machine.modules.insmod(module)
    machine.set_frequency(TURBO_GHZ)
    machine.write_voltage_offset(gap_offset)
    machine.advance(3 * COMET_LAKE.regulator_latency_s)
    report = machine.run_imul_window(iterations=2_000_000)
    return report.fault_count, module.stats.detections


def run_experiment() -> dict:
    thermal = ThermalModel(COMET_LAKE)
    cool_temp = thermal.parameters.ambient_c
    thermal.set_operating_point(TURBO_GHZ, 0.0, now=0.0)
    hot_temp = thermal.temperature_c(30.0)  # after 30 s of sustained turbo

    cool = characterize_at_temperature(cool_temp)
    hot = characterize_at_temperature(hot_temp)
    cool_boundary = cool.unsafe_states.boundary_mv(TURBO_GHZ)
    hot_boundary = hot.unsafe_states.boundary_mv(TURBO_GHZ)
    gap_offset = int((cool_boundary + hot_boundary) / 2)

    faults_cool_set, detections_cool = attack_gap(
        cool.unsafe_states, gap_offset, hot_temp
    )
    merged = cool.unsafe_states.merge(hot.unsafe_states)
    faults_merged, detections_merged = attack_gap(merged, gap_offset, hot_temp)
    return {
        "cool_temp": cool_temp,
        "hot_temp": hot_temp,
        "cool_boundary": cool_boundary,
        "hot_boundary": hot_boundary,
        "gap_offset": gap_offset,
        "faults_cool_set": faults_cool_set,
        "detections_cool": detections_cool,
        "faults_merged": faults_merged,
        "detections_merged": detections_merged,
    }


def test_thermal_gap_attack_and_mitigation(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = render_table(
        ["quantity", "value"],
        [
            ("idle die temperature", f"{data['cool_temp']:.0f} C"),
            ("die after 30 s sustained turbo", f"{data['hot_temp']:.0f} C"),
            (f"{TURBO_GHZ} GHz boundary (cool)", f"{data['cool_boundary']:.0f} mV"),
            (f"{TURBO_GHZ} GHz boundary (hot)", f"{data['hot_boundary']:.0f} mV"),
            ("attacker's gap offset", f"{data['gap_offset']} mV"),
            ("faults w/ cool-only unsafe set", data["faults_cool_set"]),
            ("module detections (cool-only set)", data["detections_cool"]),
            ("faults w/ merged (cool+hot) set", data["faults_merged"]),
            ("module detections (merged set)", data["detections_merged"]),
        ],
        title="Thermal-gap attack on the turbo boundary (Comet Lake)",
    )
    write_artifact("thermal_gap_attack.txt", text)

    # The gap exists: hot boundary is materially shallower at turbo.
    assert data["hot_boundary"] - data["cool_boundary"] >= 10.0
    # With the cool-only set the attack slips past the module...
    assert data["detections_cool"] == 0
    assert data["faults_cool_set"] > 0
    # ...and the merged characterization closes it completely.
    assert data["detections_merged"] >= 1
    assert data["faults_merged"] == 0
