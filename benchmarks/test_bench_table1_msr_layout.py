"""Table 1: the MSR 0x150 bit layout.

Regenerates the field table by encoding/decoding through the library's
codec and cross-checking every field position against the paper's
description (offset in bits 31:21, write-enable at 32, plane select in
42:40, fixed bit 63).
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.encoding import offset_voltage
from repro.cpu import ocm

from conftest import write_artifact


def build_table1() -> str:
    rows = [
        ("0 - 20", "-", "Reserved"),
        ("21 - 31", "offset", "Voltage offset (1/1024 V units, two's complement)"),
        ("32", "write-enable", "Command byte bit enabling writes"),
        ("33 - 39", "-", "Reserved (rest of the command byte)"),
        ("40 - 42", "plane select", "0=core 1=GPU 2=cache 3=uncore 4=analog I/O"),
        ("43 - 62", "-", "Reserved"),
        ("63", "fixed", "Must be 1 for the command to be accepted"),
    ]
    samples = []
    for offset_mv, plane in ((-100, 0), (-250, 0), (-50, 2), (0, 4)):
        value = offset_voltage(offset_mv, plane)
        command = ocm.decode_command(value)
        samples.append(
            (
                f"{offset_mv} mV / plane {plane}",
                f"0x{value:016x}",
                f"{command.offset_units}",
                command.plane.name,
            )
        )
    return (
        render_table(["Bits", "Function", "Explanation"], rows, title="Table 1 (reproduced)")
        + "\n\n"
        + render_table(
            ["request", "encoded (Algo 1)", "offset units", "plane"],
            samples,
            title="Sample encodings",
        )
    )


def test_table1_msr_layout(benchmark):
    text = benchmark(build_table1)
    write_artifact("table1_msr_layout.txt", text)
    # Field-position ground truths from the paper.
    value = offset_voltage(-100, plane=0)
    assert value >> 63 == 1
    assert (value >> 32) & 0xFF == 0x11
    assert (value >> 21) & 0x7FF == (-102 & 0x7FF)
    for plane in range(5):
        assert (offset_voltage(-1, plane) >> 40) & 0x7 == plane
    assert "write-enable" in text
