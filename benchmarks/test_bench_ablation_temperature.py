"""Ablation: die temperature and the characterized boundary (extension).

Guardbands exist partly because silicon timing moves with temperature.
This sweep characterizes the fault boundary at several die temperatures
and answers the deployment question the paper leaves implicit: *at what
temperature must Algorithm 2 run* so the resulting unsafe set protects
the machine at every operating temperature?

Answer made concrete — and it is *not* "just characterize hot": at turbo
frequencies a hot die faults at shallower undervolts (mobility
degradation dominates, the boundary rises with heat), while at the
voltage-floor trough the opposite holds (temperature inversion: hot
near-threshold silicon is faster, the boundary deepens with heat).  The
worst-case temperature is frequency-dependent, so a safe deployment
characterizes at both thermal extremes and enforces the *union* of the
unsafe sets (per-frequency shallowest boundary).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.report import render_table
from repro.core.characterization import CharacterizationConfig, CharacterizationResult
from repro.core.unsafe_states import UnsafeStateSet
from repro.cpu import COMET_LAKE
from repro.errors import MachineCheckError
from repro.faults.imul import ImulLoop
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel

from conftest import write_artifact

TEMPERATURES_C = (45.0, 60.0, 80.0, 95.0)
FREQUENCIES = (0.8, 2.0, 3.4, 4.9)


def characterize_at(temperature_c: float) -> CharacterizationResult:
    config = CharacterizationConfig(
        offset_start_mv=-30,
        offset_stop_mv=-280,
        offset_step_mv=2,
        frequencies_ghz=list(FREQUENCIES),
    )
    fault_model = FaultModel(COMET_LAKE, temperature_c=temperature_c)
    injector = FaultInjector(fault_model, np.random.default_rng(5))
    loop = ImulLoop(config.iterations)
    result = CharacterizationResult(
        model=COMET_LAKE,
        config=config,
        unsafe_states=UnsafeStateSet(system=f"Comet Lake @ {temperature_c:.0f}C"),
    )
    for frequency in FREQUENCIES:
        for offset in config.offsets_mv():
            conditions = fault_model.conditions_for_offset(frequency, offset)
            try:
                report = loop.run(injector, conditions)
            except MachineCheckError:
                result.unsafe_states.add_crash(frequency, offset)
                result.crashes += 1
                break
            if report.fault_count:
                result.unsafe_states.add_unsafe(frequency, offset)
    return result


def run_sweep() -> Dict[float, CharacterizationResult]:
    return {t: characterize_at(t) for t in TEMPERATURES_C}


def test_ablation_temperature(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows: List[tuple] = []
    for frequency in FREQUENCIES:
        row = [f"{frequency:.1f}"]
        for temperature in TEMPERATURES_C:
            boundary = results[temperature].unsafe_states.boundary_mv(frequency)
            row.append(f"{boundary:.0f}")
        rows.append(tuple(row))
    text = render_table(
        ["freq (GHz)"] + [f"{t:.0f} C" for t in TEMPERATURES_C],
        rows,
        title="First-fault offset (mV) vs die temperature (Comet Lake)",
    )
    maximal = {
        t: results[t].unsafe_states.maximal_safe_offset_mv() for t in TEMPERATURES_C
    }
    text += "\n\nmaximal safe state: " + ", ".join(
        f"{t:.0f}C -> {maximal[t]:.0f} mV" for t in TEMPERATURES_C
    )
    write_artifact("ablation_temperature.txt", text)

    # Turbo-frequency boundary rises (gets shallower) with heat.
    hot_turbo = results[95.0].unsafe_states.boundary_mv(4.9)
    cold_turbo = results[45.0].unsafe_states.boundary_mv(4.9)
    assert hot_turbo > cold_turbo
    # Temperature inversion at the voltage floor: the low-frequency
    # boundary moves the other way (deeper when hot).
    hot_low = results[95.0].unsafe_states.boundary_mv(0.8)
    cold_low = results[45.0].unsafe_states.boundary_mv(0.8)
    assert hot_low < cold_low
    # Deployment rule: the union of the two thermal extremes' unsafe sets
    # is conservative at every probed frequency and temperature.
    union = results[45.0].unsafe_states.merge(results[95.0].unsafe_states)
    for t in TEMPERATURES_C:
        for frequency in FREQUENCIES:
            observed = results[t].unsafe_states.boundary_mv(frequency)
            assert union.boundary_mv(frequency) >= observed - 2.0, (t, frequency)
    # And the union's maximal safe state is no deeper than any single
    # temperature's.
    assert union.maximal_safe_offset_mv() >= max(maximal.values()) - 1.0
