"""Fig. 1: the sequential-circuit timing interplay of Eq. 1.

Regenerates the figure's content as a table: for the F1 -> comb -> F2
pair at a fixed frequency, how T_src + T_prop grows as the supply drops
while T_clk, T_setup and T_eps stay fixed — crossing from the safe
inequality (Eq. 2) into the unsafe one (Eq. 3).
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.cpu import COMET_LAKE
from repro.timing.safety import SafetyAnalyzer, budget_for

from conftest import write_artifact

FREQUENCY_GHZ = 2.0


def build_fig1() -> tuple:
    analyzer = COMET_LAKE.safety_analyzer()
    budget = budget_for(FREQUENCY_GHZ, COMET_LAKE.process)
    vf = COMET_LAKE.vf_curve()
    base = vf.base_voltage(FREQUENCY_GHZ)
    rows = []
    crossing_mv = None
    for undervolt_mv in range(0, 301, 20):
        voltage = base - undervolt_mv * 1e-3
        if voltage <= COMET_LAKE.process.vth_volts + 0.02:
            break
        point = analyzer.operating_point(FREQUENCY_GHZ, voltage)
        verdict = "SAFE (Eq.2)" if point.is_safe else "UNSAFE (Eq.3)"
        if not point.is_safe and crossing_mv is None:
            crossing_mv = undervolt_mv
        rows.append(
            (
                f"-{undervolt_mv}",
                f"{voltage * 1e3:.0f}",
                f"{point.path_delay_ps:.1f}",
                f"{budget.slack_budget_ps:.1f}",
                f"{point.slack_ps:+.1f}",
                verdict,
            )
        )
    table = render_table(
        [
            "offset (mV)",
            "V_core (mV)",
            "T_src+T_prop (ps)",
            "T_clk-T_setup-T_eps (ps)",
            "slack (ps)",
            "state",
        ],
        rows,
        title=(
            f"Fig. 1 (reproduced): timing interplay at {FREQUENCY_GHZ} GHz "
            f"(T_clk={budget.t_clk_ps:.0f} ps, T_setup={budget.t_setup_ps} ps, "
            f"T_eps={budget.t_eps_ps} ps)"
        ),
    )
    return table, crossing_mv


def test_fig1_timing_interplay(benchmark):
    table, crossing_mv = benchmark(build_fig1)
    write_artifact("fig1_timing_interplay.txt", table)
    # The inequality flips exactly once, at a plausible undervolt depth.
    assert crossing_mv is not None
    assert 40 <= crossing_mv <= 200
    assert "SAFE (Eq.2)" in table and "UNSAFE (Eq.3)" in table
    # The RHS of Eq. 1 is voltage-independent: a single budget value.
    budgets = {line.split()[3] for line in table.splitlines()[3:] if line.strip()}
    assert len(budgets) == 1
