"""Sec. 5: the maximal safe state and the deeper deployments.

Derives the maximal safe state from each CPU's characterization, then
pits the adaptive frequency-jump attack (the hardest ordering for a
polling defense) against three deployments: polling alone, polling +
microcode write-ignore (Sec. 5.1), polling + MSR clamp (Sec. 5.2).
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import render_table
from repro.cpu import PAPER_MODEL_TUPLE
from repro.experiments import maximal_safe_deployments

from conftest import characterize, write_artifact


def maximal_safe_rows() -> List[tuple]:
    rows = []
    for model in PAPER_MODEL_TUPLE:
        result = characterize(model)
        profile = dict(result.boundary_profile())
        shallowest_f = max(profile, key=lambda f: profile[f])
        rows.append(
            (
                model.codename,
                f"{result.maximal_safe_offset_mv():.0f} mV",
                f"{profile[shallowest_f]:.0f} mV @ {shallowest_f:.1f} GHz",
                f"{min(profile.values()):.0f} mV",
            )
        )
    return rows


def deployment_outcomes() -> List[tuple]:
    return [(d.deployment, d.outcome) for d in maximal_safe_deployments(seed=9)]


def test_maximal_safe_state_and_deployments(benchmark):
    def body():
        return maximal_safe_rows(), deployment_outcomes()

    maximal_rows, deployments = benchmark.pedantic(body, rounds=1, iterations=1)
    text = render_table(
        ["CPU", "maximal safe state", "shallowest fault boundary", "deepest boundary"],
        maximal_rows,
        title="Maximal safe state per CPU (Sec. 5)",
    )
    text += "\n\n" + render_table(
        ["deployment", "faults in window", "writes blocked", "attack succeeded"],
        [
            (name, o.faults_observed, o.writes_blocked, "yes" if o.succeeded else "no")
            for name, o in deployments
        ],
        title="Adaptive frequency-jump attack vs deployment depth (Comet Lake)",
    )
    write_artifact("maximal_safe_deployments.txt", text)

    # Sec. 5 claims: the maximal safe state exists per CPU and is the
    # shallowest boundary (plus margin); the deeper deployments eliminate
    # even the adaptive window that kernel-level polling leaves.
    assert len(maximal_rows) == 3
    by_name = dict(deployments)
    assert by_name["polling only"].faults_observed > 0
    assert by_name["polling + microcode (5.1)"].faults_observed == 0
    assert by_name["polling + MSR clamp (5.2)"].faults_observed == 0
    assert by_name["polling + microcode (5.1)"].writes_blocked == 3
    # The clamp accepts (and clamps) writes rather than dropping them.
    assert by_name["polling + MSR clamp (5.2)"].writes_blocked == 0
