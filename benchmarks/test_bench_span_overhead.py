"""Disabled-path cost of span recording in the job execution pipeline.

Span tracing follows the telemetry layer's rule: observability must not
tax the experiment.  With ``REPRO_SPANS=0`` every recorder is the shared
``NULL_SPANS`` singleton and each phase costs one no-op context manager;
with spans on, the per-phase cost is a couple of dict writes.  This
benchmark races the same serial job batch with spans disabled against
itself (the spread is the machine's noise floor right now) and against
the spans-enabled path, and pins the relative overhead to the same
sub-percent regime as the telemetry-hook budget
(``REPRO_OVERHEAD_BUDGET``, default 1%).
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from repro.core.characterization import CharacterizationConfig
from repro.engine.jobs import CharacterizationRowJob, execute_job
from repro.observe.spans import SPANS_ENV

from conftest import record_trajectory, write_artifact

BUDGET_ENV = "REPRO_OVERHEAD_BUDGET"
DEFAULT_BUDGET = 0.01

REPEATS = 25

#: A small serial batch: three paper-resolution sweep rows, each ~10ms
#: of real work, so the ratio reflects spans against realistic jobs.
JOBS = tuple(
    CharacterizationRowJob(
        codename="Comet Lake",
        frequency_ghz=frequency,
        config=CharacterizationConfig(),
        seed=5,
    )
    for frequency in (1.2, 2.4, 3.6)
)


def _drain(enabled: bool) -> float:
    os.environ[SPANS_ENV] = "1" if enabled else "0"
    start = perf_counter()
    for job in JOBS:
        result = execute_job(job)
        assert bool(result.spans) is enabled
    return perf_counter() - start


def _min_interleaved(settings) -> list:
    best = [float("inf")] * len(settings)
    for _ in range(REPEATS):
        for index, enabled in enumerate(settings):
            best[index] = min(best[index], _drain(enabled))
    return best


def test_span_recording_cost_within_budget():
    budget = float(os.environ.get(BUDGET_ENV, DEFAULT_BUDGET))
    prior = os.environ.get(SPANS_ENV)
    try:
        off_a, off_b, on = _min_interleaved([False, False, True])
    finally:
        if prior is None:
            os.environ.pop(SPANS_ENV, None)
        else:
            os.environ[SPANS_ENV] = prior
    off = min(off_a, off_b)
    noise = abs(off_a - off_b) / off
    overhead = (on - off) / off
    allowance = budget + 2.0 * noise
    artifact = {
        "jobs_per_run": len(JOBS),
        "repeats": REPEATS,
        "disabled_s": off,
        "enabled_s": on,
        "noise_floor": noise,
        "relative_overhead": overhead,
        "budget": budget,
        "allowance": allowance,
        "within_budget": overhead <= allowance,
    }
    write_artifact(
        "span_overhead.json",
        json.dumps(artifact, sort_keys=True, indent=2),
    )
    record_trajectory(
        "span_overhead",
        "relative_overhead",
        overhead,
        unit="ratio",
        context={"jobs_per_run": len(JOBS), "repeats": REPEATS},
    )
    assert overhead <= allowance, (
        f"span recording overhead {overhead * 100:.2f}% exceeds budget "
        f"{budget * 100:.2f}% + noise floor {noise * 100:.2f}%"
    )
