"""Ablation: characterization cost — exhaustive grid vs bisection.

On real hardware every probed cell costs a regulator settle plus one
million ``imul`` iterations, and each frequency's sweep ends in a crash
and reboot.  The adaptive (bisection) extension finds the same boundary
with an order of magnitude fewer probes; this benchmark quantifies the
trade and verifies the boundaries agree.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.core.adaptive import AdaptiveCharacterization
from repro.core.characterization import CharacterizationFramework
from repro.cpu import COMET_LAKE

from conftest import characterize, write_artifact

#: Estimated wall cost of one probe on real hardware: regulator settle
#: (~0.8 ms) + 1M imul (~0.5 ms) + bookkeeping.
PROBE_COST_S = 1.5e-3

#: Estimated reboot cost after a crash on real hardware.
REBOOT_COST_S = 45.0


def run_both() -> tuple:
    full = characterize(COMET_LAKE)
    adaptive = AdaptiveCharacterization(COMET_LAKE, seed=5).run()
    return full, adaptive


def test_ablation_characterization_cost(benchmark):
    full, adaptive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    full_probes = len(full.cells)
    full_cost = full_probes * PROBE_COST_S + full.crashes * REBOOT_COST_S
    adaptive_cost = adaptive.probes * PROBE_COST_S + adaptive.crashes * REBOOT_COST_S

    full_boundaries = dict(full.boundary_profile())
    max_divergence = max(
        abs(boundary - full_boundaries[f]) for f, boundary in adaptive.boundaries
    )
    rows = [
        ("probes", full_probes, adaptive.probes),
        ("crashes (reboots)", full.crashes, adaptive.crashes),
        (
            "est. wall time on real HW",
            f"{full_cost / 60:.0f} min",
            f"{adaptive_cost / 60:.0f} min",
        ),
        (
            "maximal safe state",
            f"{full.maximal_safe_offset_mv():.0f} mV",
            f"{adaptive.result.unsafe_states.maximal_safe_offset_mv():.0f} mV",
        ),
        ("max boundary divergence", "-", f"{max_divergence:.0f} mV"),
    ]
    write_artifact(
        "ablation_characterization_cost.txt",
        render_table(
            ["metric", "exhaustive (Algo 2)", "adaptive (bisection)"],
            rows,
            title="Characterization cost ablation (Comet Lake)",
        ),
    )

    # The bisection must be at least 5x cheaper in probes, nearly
    # reboot-free (warm-started brackets land in the fault band, not the
    # crash region), and agree with the exhaustive boundary to within the
    # sampling band.
    assert adaptive.probes * 5 < full_probes
    assert adaptive.crashes <= 5 < full.crashes
    assert max_divergence <= 12.0
    assert abs(
        full.maximal_safe_offset_mv()
        - adaptive.result.unsafe_states.maximal_safe_offset_mv()
    ) <= 10.0
