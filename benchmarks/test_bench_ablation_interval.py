"""Ablation: polling period vs prevention and overhead.

The design choice DESIGN.md calls out: the polling period must undercut
the voltage regulator's apply delay for the 0x150 route to be fully
closed, while the CPU-time theft grows as the period shrinks.  This
sweep makes the trade-off concrete and locates the paper's operating
point (sub-millisecond period, sub-percent overhead, zero faults).
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import render_table
from repro.attacks import ImulCampaign
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.testbench import Machine

from conftest import characterize, write_artifact

#: Poll periods swept, seconds.
PERIODS_S = (50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2e-3, 5e-3)


def run_sweep() -> List[tuple]:
    result = characterize(COMET_LAKE)
    boundary = int(result.unsafe_states.boundary_mv(1.8))
    offsets = (boundary - 5, boundary - 10, boundary - 15, boundary - 20, -300)
    rows = []
    for period in PERIODS_S:
        machine = Machine.build(COMET_LAKE, seed=21)
        module = PollingCountermeasure(
            machine, result.unsafe_states, period_s=period
        )
        machine.modules.insmod(module)
        campaign = ImulCampaign(
            machine,
            frequency_ghz=1.8,
            offsets_mv=offsets,
            iterations_per_point=500_000,
        )
        outcome = campaign.mount()
        rows.append(
            (
                period,
                outcome.faults_observed,
                outcome.crashes,
                module.duty_cycle(),
                module.worst_case_turnaround_s(),
            )
        )
    return rows


def test_ablation_polling_interval(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = render_table(
        ["period (us)", "faults", "crashes", "duty cycle (1 core)", "worst turnaround (us)"],
        [
            (
                f"{p * 1e6:.0f}",
                faults,
                crashes,
                f"{duty * 100:.2f}%",
                f"{turnaround * 1e6:.0f}",
            )
            for p, faults, crashes, duty, turnaround in rows
        ],
        title="Polling-period ablation (Comet Lake, 0x150 attack route)",
    )
    write_artifact("ablation_polling_interval.txt", text)

    by_period = {p: (faults, crashes, duty) for p, faults, crashes, duty, _ in rows}
    regulator = COMET_LAKE.regulator_latency_s
    # Every period that undercuts the regulator delay prevents all faults.
    for period, (faults, crashes, duty) in by_period.items():
        if period < regulator * 0.9:
            assert faults == 0 and crashes == 0, period
    # Periods far beyond the regulator delay let the voltage apply and
    # the attack succeed (or crash the box).
    assert by_period[5e-3][0] > 0 or by_period[5e-3][1] > 0
    # Overhead decreases monotonically with the period.
    duties = [duty for _, _, _, duty, _ in rows]
    assert duties == sorted(duties, reverse=True)
    # The paper's operating point: the default 500 us period costs ~1% of
    # one core, i.e. a fraction of a percent machine-wide.
    assert by_period[500e-6][2] < 0.02
