"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
timed body is the actual experiment (characterization sweep, attack
campaign, SPEC measurement); the rendered artefact is written to
``benchmarks/results/`` so the reproduced rows/series survive the run,
and shape assertions encode what "reproduced" means.
"""

from __future__ import annotations

import os

from pathlib import Path

import pytest

from repro.core.characterization import CharacterizationResult
from repro.cpu import COMET_LAKE, KABY_LAKE_R, SKY_LAKE, CPUModel
from repro.engine import get_session

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _hermetic_registry(tmp_path_factory) -> None:
    """Run-registry isolation: temp dir unless the environment chose one.

    CI exports ``REPRO_REGISTRY_DIR`` so the recorded runs become a
    build artifact; a developer's ad-hoc bench run must not write to
    their ``~/.repro/registry`` by surprise.
    """
    if "REPRO_REGISTRY" not in os.environ and "REPRO_REGISTRY_DIR" not in os.environ:
        os.environ["REPRO_REGISTRY_DIR"] = str(
            tmp_path_factory.mktemp("registry")
        )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the reproduced artefacts are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(name: str, content: str) -> Path:
    """Persist one reproduced table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    return path


def record_trajectory(
    bench: str,
    metric: str,
    value: float,
    *,
    unit: str = "s",
    lower_is_better: bool = True,
    context: dict | None = None,
) -> None:
    """Append one perf point to the env-selected registry (best effort).

    Benchmarks call this after writing their artifact so every bench run
    grows the local trajectory; a disabled registry (``REPRO_REGISTRY=0``)
    or any registry failure silently skips — recording perf history must
    never fail the bench that produced the number.
    """
    try:
        from repro.registry import RunRegistry, make_point, record_point

        registry = RunRegistry.from_env()
        if registry is None:
            return
        record_point(
            make_point(
                bench,
                metric,
                value,
                unit=unit,
                lower_is_better=lower_is_better,
                context=context,
            ),
            registry=registry,
        )
    except Exception:
        pass


def characterize(model: CPUModel, seed: int = 5) -> CharacterizationResult:
    """Engine-cached full Algo 2 sweep for a model.

    Goes through the shared :func:`repro.engine.get_session` cache — the
    same one the experiment API uses — so a sweep is computed once per
    process no matter which layer asks first.
    """
    return get_session().characterize(model, seed=seed)


@pytest.fixture(scope="session")
def comet_characterization() -> CharacterizationResult:
    return characterize(COMET_LAKE)


@pytest.fixture(scope="session")
def skylake_characterization() -> CharacterizationResult:
    return characterize(SKY_LAKE)


@pytest.fixture(scope="session")
def kabylake_characterization() -> CharacterizationResult:
    return characterize(KABY_LAKE_R)
