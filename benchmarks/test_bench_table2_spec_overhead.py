"""Table 2: SPEC2017 overhead of the polling module on Comet Lake.

Regenerates all 23 rows (base and peak rates with/without polling, and
the slowdown columns) and compares the aggregate against the paper's
headline 0.28% figure.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.bench.overhead import (
    PAPER_TABLE2_BY_NAME,
    compare_with_paper,
    paper_mean_base_overhead,
)
from repro.bench.runner import OverheadReport
from repro.bench.stats import summarize_overhead
from repro.experiments import table2_overhead

from conftest import write_artifact


def run_table2() -> OverheadReport:
    return table2_overhead(seed=3)


def render_table2(report: OverheadReport) -> str:
    rows = []
    for row in report.rows:
        paper = PAPER_TABLE2_BY_NAME[row.name]
        rows.append(
            (
                row.name,
                f"{row.base_without:.2f}",
                f"{row.base_with:.2f}",
                f"{row.base_slowdown * 100:+.2f}%",
                f"{paper.base_slowdown_pct:+.2f}%",
                f"{row.peak_slowdown * 100:+.2f}%",
                f"{paper.peak_slowdown_pct:+.2f}%",
            )
        )
    table = render_table(
        [
            "Benchmark",
            "Base (w/o)",
            "Base (with)",
            "Slowdown",
            "paper",
            "Peak slowdown",
            "paper",
        ],
        rows,
        title="Table 2 (reproduced): polling overhead on SPEC2017, Comet Lake",
    )
    statistics = summarize_overhead(report)
    table += (
        f"\n\nmean base overhead: {report.mean_base_overhead * 100:.2f}% "
        f"(paper headline: 0.28%; paper base-column mean: "
        f"{paper_mean_base_overhead() * 100:.2f}%)"
        f"\nmean peak overhead: {report.mean_peak_overhead * 100:.2f}%"
        f"\naggregates: {statistics.summary()}"
        f"\npolling duty cycle (one core): {report.polling_duty_cycle * 100:.2f}%"
    )
    return table


def test_table2_spec_overhead(benchmark):
    report = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    write_artifact("table2_spec_overhead.txt", render_table2(report))
    # Shape claims: all 23 rows degrade, every row stays "minuscule"
    # (single-digit percent at worst, like the paper's -4.24% outlier),
    # and the aggregate lands in the paper's sub-half-percent regime.
    assert len(report.rows) == 23
    for row in report.rows:
        assert -0.05 < row.base_slowdown < 0.0
        assert -0.05 < row.peak_slowdown < 0.0
    assert report.mean_base_overhead < 0.006
    assert abs(report.mean_base_overhead - 0.0028) < 0.003
    comparison = compare_with_paper(report)
    assert len(comparison) == 23
