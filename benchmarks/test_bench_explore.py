"""Fault-space explorer acceptance: coverage with a deterministic prune ratio.

Runs the small Sky Lake exploration plan twice — undefended, then with
the polling countermeasure loaded — and asserts the coverage contract
(exploitable points > 0 open, exactly 0 protected).  The recorded metric
is the overall *prune ratio*: the fraction of the enumerated fault space
(operating points plus injection pairs) the three pruning tiers retired
without simulation.  The ratio is a pure function of the plan and the
victim trace — no wall-clock in it — so the committed baseline in
``benchmarks/trajectories/BENCH_explore.json`` is gated tightly by
``repro trajectory check`` in the registry-gate workflow.
"""

from __future__ import annotations

import json
import time

from repro.engine import EngineSession, SerialExecutor
from repro.engine.cache import ResultCache
from repro.explore import ExplorePlan, canonical_json, coverage_holds, run_explore

from conftest import record_trajectory, write_artifact

#: Small but representative plan: spans safe, feasible and crash offsets.
FREQUENCIES = (0.8, 2.0, 3.2)
OFFSETS = tuple(range(-40, -281, -40))


def _explore(protect: bool, unsafe_json: str | None):
    plan = ExplorePlan(
        codename="Sky Lake",
        frequencies_ghz=FREQUENCIES,
        offsets_mv=OFFSETS,
        protect=protect,
        unsafe_json=unsafe_json,
    )
    session = EngineSession(
        executor=SerialExecutor(), cache=ResultCache(), registry=None
    )
    return run_explore(plan, session=session)


def test_explore_coverage_and_prune_ratio(benchmark, skylake_characterization):
    start = time.perf_counter()
    open_map = benchmark.pedantic(
        _explore, args=(False, None), rounds=1, iterations=1
    )
    open_s = time.perf_counter() - start

    unsafe_json = json.dumps(
        skylake_characterization.unsafe_states.to_dict(), sort_keys=True
    )
    protected_map = _explore(True, unsafe_json)

    # The coverage contract the whole subsystem exists for.
    assert open_map["summary"]["exploitable_points"] > 0
    assert protected_map["summary"]["exploitable_points"] == 0
    assert coverage_holds(open_map, protected_map)

    stats = open_map["stats"]
    enumerated = stats["points_enumerated"] + stats["injections_enumerated"]
    pruned = (
        stats["points_pruned_safe"]
        + stats["injections_pruned_masked"]
        + stats["injections_pruned_equivalent"]
    )
    prune_ratio = pruned / enumerated

    write_artifact("explore_open.map.json", canonical_json(open_map).rstrip())
    write_artifact(
        "explore.json",
        json.dumps(
            {
                "plan": open_map["plan"],
                "stats": stats,
                "summary_open": open_map["summary"],
                "summary_protected": protected_map["summary"],
                "prune_ratio": prune_ratio,
                "open_seconds": open_s,
            },
            indent=2,
            sort_keys=True,
        ),
    )
    record_trajectory(
        "explore",
        "prune_ratio",
        prune_ratio,
        unit="frac",
        lower_is_better=False,
        context={
            "points": stats["points_enumerated"],
            "injections": stats["injections_enumerated"],
        },
    )
    assert prune_ratio > 0.0, "pruning tiers retired nothing"
